package faas

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	reg.Register("fail", func(p []byte) ([]byte, error) { return nil, errors.New("handler error") })
	reg.Register("double", func(p []byte) ([]byte, error) { return append(p, p...), nil })
	return reg
}

func newTestEndpoint(capacity int, cold time.Duration) *Endpoint {
	return NewEndpoint(EndpointConfig{
		Name: "ep", Capacity: capacity, ColdStart: cold, WarmTTL: time.Minute,
	}, echoRegistry())
}

func TestRegistryRegisterLookup(t *testing.T) {
	reg := echoRegistry()
	if _, ok := reg.Lookup("echo"); !ok {
		t.Fatal("echo not found")
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Fatal("phantom function")
	}
	if len(reg.Names()) != 3 {
		t.Fatalf("Names = %v", reg.Names())
	}
}

func TestRegistryNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler accepted")
		}
	}()
	NewRegistry().Register("x", nil)
}

func TestInvokeEcho(t *testing.T) {
	ep := newTestEndpoint(2, 0)
	out, err := ep.Invoke("echo", []byte("hi"))
	if err != nil || !bytes.Equal(out, []byte("hi")) {
		t.Fatalf("Invoke = %q, %v", out, err)
	}
	if ep.Invocations() != 1 {
		t.Fatalf("Invocations = %d", ep.Invocations())
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	if _, err := ep.Invoke("nope", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeHandlerError(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	if _, err := ep.Invoke("fail", nil); err == nil {
		t.Fatal("handler error swallowed")
	}
}

func TestColdThenWarm(t *testing.T) {
	ep := newTestEndpoint(1, time.Millisecond)
	start := time.Now()
	ep.Invoke("echo", nil)
	coldDur := time.Since(start)
	if ep.ColdStarts() != 1 || ep.WarmHits() != 0 {
		t.Fatalf("cold/warm = %d/%d after first call", ep.ColdStarts(), ep.WarmHits())
	}
	start = time.Now()
	ep.Invoke("echo", nil)
	warmDur := time.Since(start)
	if ep.ColdStarts() != 1 || ep.WarmHits() != 1 {
		t.Fatalf("cold/warm = %d/%d after second call", ep.ColdStarts(), ep.WarmHits())
	}
	if warmDur >= coldDur {
		t.Fatalf("warm %v not faster than cold %v", warmDur, coldDur)
	}
}

func TestWarmPoolsArePerFunction(t *testing.T) {
	ep := newTestEndpoint(2, 0)
	ep.Invoke("echo", nil)
	ep.Invoke("double", []byte("x"))
	if ep.ColdStarts() != 2 {
		t.Fatalf("ColdStarts = %d, want 2 (per-function pools)", ep.ColdStarts())
	}
	if ep.WarmCount("echo") != 1 || ep.WarmCount("double") != 1 {
		t.Fatal("warm pools wrong")
	}
}

func TestWarmTTLExpiry(t *testing.T) {
	ep := NewEndpoint(EndpointConfig{
		Name: "ep", Capacity: 1, ColdStart: 0, WarmTTL: time.Millisecond,
	}, echoRegistry())
	ep.Invoke("echo", nil)
	time.Sleep(5 * time.Millisecond)
	ep.Invoke("echo", nil)
	if ep.ColdStarts() != 2 {
		t.Fatalf("ColdStarts = %d, want 2 (TTL expiry)", ep.ColdStarts())
	}
}

func TestCapacityLimitsConcurrency(t *testing.T) {
	reg := NewRegistry()
	var active, peak int64
	reg.Register("slow", func([]byte) ([]byte, error) {
		cur := atomic.AddInt64(&active, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&active, -1)
		return nil, nil
	})
	ep := NewEndpoint(EndpointConfig{Name: "ep", Capacity: 3}, reg)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep.Invoke("slow", nil)
		}()
	}
	wg.Wait()
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Fatalf("peak concurrency %d > capacity 3", p)
	}
}

func TestCloseRejectsInvocations(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	ep.Close()
	if _, err := ep.Invoke("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeBatchAmortizesColdStart(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	payloads := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	outs, err := ep.InvokeBatch("echo", payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 || !bytes.Equal(outs[1], []byte("b")) {
		t.Fatalf("outs = %q", outs)
	}
	if ep.ColdStarts() != 1 {
		t.Fatalf("ColdStarts = %d, want 1 for whole batch", ep.ColdStarts())
	}
	if ep.Invocations() != 3 {
		t.Fatalf("Invocations = %d", ep.Invocations())
	}
}

func TestRouterRoundRobinSpreads(t *testing.T) {
	reg := echoRegistry()
	a := NewEndpoint(EndpointConfig{Name: "a", Capacity: 4}, reg)
	b := NewEndpoint(EndpointConfig{Name: "b", Capacity: 4}, reg)
	r := NewRouter(RouteRoundRobin, a, b)
	for i := 0; i < 10; i++ {
		r.Invoke("echo", nil)
	}
	if a.Invocations() != 5 || b.Invocations() != 5 {
		t.Fatalf("spread = %d/%d, want 5/5", a.Invocations(), b.Invocations())
	}
}

func TestRouterStickyPinsFunction(t *testing.T) {
	reg := echoRegistry()
	a := NewEndpoint(EndpointConfig{Name: "a", Capacity: 4}, reg)
	b := NewEndpoint(EndpointConfig{Name: "b", Capacity: 4}, reg)
	r := NewRouter(RouteSticky, a, b)
	for i := 0; i < 8; i++ {
		r.Invoke("echo", nil)
	}
	if a.Invocations() != 0 && b.Invocations() != 0 {
		t.Fatal("sticky routing split one function across endpoints")
	}
	// Sticky maximizes warm reuse: exactly one cold start total.
	if a.ColdStarts()+b.ColdStarts() != 1 {
		t.Fatalf("cold starts = %d, want 1", a.ColdStarts()+b.ColdStarts())
	}
}

func TestRouterLeastLoaded(t *testing.T) {
	reg := NewRegistry()
	block := make(chan struct{})
	reg.Register("block", func([]byte) ([]byte, error) { <-block; return nil, nil })
	reg.Register("quick", func([]byte) ([]byte, error) { return nil, nil })
	a := NewEndpoint(EndpointConfig{Name: "a", Capacity: 2}, reg)
	b := NewEndpoint(EndpointConfig{Name: "b", Capacity: 2}, reg)
	r := NewRouter(RouteLeastLoaded, a, b)
	// Occupy endpoint a.
	go r.Invoke("block", nil)
	for a.Running() == 0 && b.Running() == 0 {
		time.Sleep(time.Millisecond)
	}
	loaded := a
	idle := b
	if b.Running() > 0 {
		loaded, idle = b, a
	}
	_ = loaded
	r.Invoke("quick", nil)
	if idle.Invocations() != 1 {
		t.Fatal("least-loaded did not avoid the busy endpoint")
	}
	close(block)
}

func TestRouterPanicsWithoutEndpoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty router accepted")
		}
	}()
	NewRouter(RouteRoundRobin)
}

func TestBatcherGroupsCalls(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	b := NewBatcher(ep, 4, 50*time.Millisecond)
	defer b.Close()
	var wg sync.WaitGroup
	outs := make([][]byte, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := b.Invoke("echo", []byte{byte('a' + i)})
			if err != nil {
				t.Errorf("invoke %d: %v", i, err)
			}
			outs[i] = out
		}()
	}
	wg.Wait()
	for i := range outs {
		if !bytes.Equal(outs[i], []byte{byte('a' + i)}) {
			t.Fatalf("out[%d] = %q", i, outs[i])
		}
	}
	if b.Flushes() != 1 {
		t.Fatalf("Flushes = %d, want 1 full batch", b.Flushes())
	}
	if ep.ColdStarts() != 1 {
		t.Fatalf("ColdStarts = %d, want 1", ep.ColdStarts())
	}
}

func TestBatcherTimeoutFlush(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	b := NewBatcher(ep, 100, 5*time.Millisecond)
	defer b.Close()
	start := time.Now()
	out, err := b.Invoke("echo", []byte("solo"))
	if err != nil || !bytes.Equal(out, []byte("solo")) {
		t.Fatalf("Invoke = %q, %v", out, err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("timeout flush took far too long")
	}
}

func TestBatcherPerFunctionBatches(t *testing.T) {
	ep := newTestEndpoint(2, 0)
	b := NewBatcher(ep, 2, 10*time.Millisecond)
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); b.Invoke("echo", []byte("e")) }()
		wg.Add(1)
		go func() { defer wg.Done(); b.Invoke("double", []byte("d")) }()
	}
	wg.Wait()
	if b.Flushes() != 2 {
		t.Fatalf("Flushes = %d, want 2 (one per function)", b.Flushes())
	}
}

func TestBatcherCloseRejects(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	b := NewBatcher(ep, 2, time.Millisecond)
	b.Close()
	if _, err := b.Invoke("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestBatcherErrorFansOut(t *testing.T) {
	ep := newTestEndpoint(1, 0)
	b := NewBatcher(ep, 2, time.Millisecond)
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = b.Invoke("fail", nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("call %d missing batch error", i)
		}
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	reg := echoRegistry()
	eps := make([]*Endpoint, 3)
	for i := range eps {
		eps[i] = NewEndpoint(EndpointConfig{
			Name: fmt.Sprintf("ep%d", i), Capacity: 4, WarmTTL: time.Minute,
		}, reg)
	}
	r := NewRouter(RouteLeastLoaded, eps...)
	var wg sync.WaitGroup
	const calls = 200
	var failures atomic.Int64
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Invoke("echo", []byte("x")); err != nil {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failures", failures.Load())
	}
	total := int64(0)
	for _, ep := range eps {
		total += ep.Invocations()
	}
	if total != calls {
		t.Fatalf("total invocations = %d, want %d", total, calls)
	}
}

// TestPreemptAbandonedFreesSlot: with PreemptAbandoned, cancelling a
// caller must free the capacity slot immediately — a waiting invocation
// proceeds while the abandoned handler is still running — and the late
// handler's own cleanup must not double-release the slot.
func TestPreemptAbandonedFreesSlot(t *testing.T) {
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	reg := NewRegistry()
	reg.Register("hang", func([]byte) ([]byte, error) {
		started.Done()
		<-release
		return []byte("late"), nil
	})
	reg.Register("quick", func(p []byte) ([]byte, error) { return p, nil })
	ep := NewEndpoint(EndpointConfig{
		Name: "ep", Capacity: 1, WarmTTL: time.Minute, PreemptAbandoned: true,
	}, reg)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ep.InvokeContext(ctx, "hang", nil)
		errc <- err
	}()
	started.Wait()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled invocation returned %v", err)
	}
	if ep.Preempted() != 1 {
		t.Fatalf("Preempted = %d, want 1", ep.Preempted())
	}

	// The slot must already be free even though "hang" is still running.
	qctx, qcancel := context.WithTimeout(context.Background(), time.Second)
	defer qcancel()
	if out, err := ep.InvokeContext(qctx, "quick", []byte("go")); err != nil || string(out) != "go" {
		t.Fatalf("post-preemption invoke = %q, %v — slot not freed", out, err)
	}

	// Let the abandoned handler finish; its cleanup must NOT release the
	// slot a second time. If it did, capacity 1 would admit two
	// concurrent handlers below.
	close(release)
	time.Sleep(10 * time.Millisecond)
	var active, peak int64
	reg.Register("probe", func([]byte) ([]byte, error) {
		cur := atomic.AddInt64(&active, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		atomic.AddInt64(&active, -1)
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep.Invoke("probe", nil)
		}()
	}
	wg.Wait()
	if p := atomic.LoadInt64(&peak); p > 1 {
		t.Fatalf("peak concurrency %d > capacity 1 — preemption double-released the slot", p)
	}
}

// TestExecTimeoutDoesNotPreempt: ExecTimeout abandonment often means a
// wedged handler, so even with PreemptAbandoned the slot must stay held
// until the handler actually returns — otherwise timeouts oversubscribe
// the endpoint.
func TestExecTimeoutDoesNotPreempt(t *testing.T) {
	release := make(chan struct{})
	reg := NewRegistry()
	reg.Register("wedge", func([]byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	reg.Register("quick", func(p []byte) ([]byte, error) { return p, nil })
	ep := NewEndpoint(EndpointConfig{
		Name: "ep", Capacity: 1, WarmTTL: time.Minute,
		ExecTimeout: 10 * time.Millisecond, PreemptAbandoned: true,
	}, reg)

	if _, err := ep.Invoke("wedge", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged invoke returned %v, want deadline exceeded", err)
	}
	if ep.Preempted() != 0 {
		t.Fatalf("Preempted = %d after ExecTimeout, want 0", ep.Preempted())
	}

	// The wedged handler still owns the slot: a bounded wait must fail.
	qctx, qcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer qcancel()
	if _, err := ep.InvokeContext(qctx, "quick", nil); err == nil {
		t.Fatal("invoke proceeded while a timed-out handler held the slot")
	}

	// Once the handler returns, the slot comes back.
	close(release)
	qctx2, qcancel2 := context.WithTimeout(context.Background(), time.Second)
	defer qcancel2()
	if out, err := ep.InvokeContext(qctx2, "quick", []byte("ok")); err != nil || string(out) != "ok" {
		t.Fatalf("invoke after handler return = %q, %v", out, err)
	}
}
