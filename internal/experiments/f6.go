package experiments

import (
	"fmt"

	"continuum/internal/metrics"
	"continuum/internal/netsim"
)

// F6LightWall quantifies the abstract's "hardware acceleration overcomes
// speed-of-light delays; time and space merge": as accelerators shrink
// service time, propagation delay becomes the binding constraint. For
// each (service time, distance) pair we report the fraction of end-to-end
// latency spent in flight; the "wall" is where that fraction crosses 50%.
// Below ~1 ms of compute, anything beyond a metro is propagation-bound —
// placement stops being about machines and starts being about kilometers.
func F6LightWall(Size) *Result {
	services := []float64{1e-6, 1e-4, 1e-2, 1}
	distances := []float64{1, 100, 1000, 10000} // km

	tbl := metrics.NewTable(
		"F6 — speed-of-light wall: propagation share of end-to-end latency",
		"service", "1km", "100km", "1000km", "10000km", "wall_at",
	)
	for _, svc := range services {
		row := []string{metrics.FormatDuration(svc)}
		wall := "beyond sweep"
		for _, km := range distances {
			rtt := 2 * netsim.PropagationDelay(km*1.5) // 1.5x path stretch
			share := rtt / (rtt + svc)
			row = append(row, fmt.Sprintf("%.1f%%", share*100))
			if wall == "beyond sweep" && share >= 0.5 {
				wall = fmt.Sprintf("<=%.0fkm", km)
			}
		}
		row = append(row, wall)
		tbl.AddRow(row...)
	}
	return &Result{
		ID:    "F6",
		Title: "Speed-of-light wall (propagation share vs service time and distance)",
		Notes: "Expected shape: at 1µs service time even 1km is propagation-bound; at 1s service time distance is irrelevant. The 50% wall moves outward ~1 decade in distance per decade of service time.",
		Table: tbl,
	}
}
