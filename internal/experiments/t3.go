package experiments

import (
	"fmt"

	"continuum/internal/geo"
	"continuum/internal/metrics"
	"continuum/internal/workload"
)

// T3Facility answers "where should I place my computers": choose k
// facility locations serving 200 clustered demand sites on a continental
// (5000km) canvas, comparing greedy k-median, local search, and random
// placement on weighted RTT.
func T3Facility(size Size) *Result {
	ks := []int{1, 2, 4, 8, 16}
	nClusters, perCluster := 10, 20
	lsIters := 8
	if size == Small {
		ks = []int{1, 4}
		nClusters, perCluster = 5, 8
		lsIters = 3
	}

	rng := workload.NewRNG(2019)
	sites := geo.ClusteredSites(rng.Split(), nClusters, perCluster, 80, 5000)

	tbl := metrics.NewTable(
		"T3 — facility placement over clustered continental demand",
		"k", "method", "mean_rtt", "p99_rtt", "max_load_share",
	)

	for _, k := range ks {
		placements := []struct {
			name string
			idx  []int
		}{
			{"greedy", geo.GreedyKMedian(sites, k)},
			{"local-search", geo.LocalSearch(sites, k, rng.Split(), lsIters)},
			{"random", geo.RandomPlacement(sites, k, rng.Split())},
		}
		for _, p := range placements {
			a := geo.Evaluate(sites, p.idx)
			tbl.AddRow(
				fmt.Sprintf("%d", k),
				p.name,
				metrics.FormatDuration(a.MeanRTT),
				metrics.FormatDuration(a.P99RTT),
				fmt.Sprintf("%.0f%%", a.MaxLoadShare*100),
			)
		}
	}
	return &Result{
		ID:    "T3",
		Title: "Where should I place my computers? (k-facility location)",
		Table: tbl,
		Notes: "Expected shape: greedy within a few percent of local-search and both far below random; mean/p99 RTT fall steeply up to k~4-8 (one facility per demand cluster) and flatten after — diminishing returns to more sites.",
	}
}
