package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"continuum/internal/core"
	"continuum/internal/faas"
	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/sim"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// Ablations returns the design-choice studies indexed in DESIGN.md. They
// are not paper tables; they justify implementation decisions.
func Ablations() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"A1", AblationEventQueue},
		{"A2", AblationFairShare},
		{"A3", AblationHEFTRank},
		{"A4", AblationBatchSize},
		{"A5", AblationBagHeuristics},
	}
}

// LookupAblation finds an ablation by id, or nil.
func LookupAblation(id string) Runner {
	for _, a := range Ablations() {
		if a.ID == id {
			return a.Run
		}
	}
	return nil
}

// sortedListKernel is the strawman scheduler: events kept in a sorted
// slice with O(n) insertion. It exists only to quantify what the binary
// heap buys.
type sortedListKernel struct {
	now    float64
	events []struct {
		t  float64
		fn func()
	}
}

func (k *sortedListKernel) after(d float64, fn func()) {
	t := k.now + d
	i := sort.Search(len(k.events), func(i int) bool { return k.events[i].t > t })
	k.events = append(k.events, struct {
		t  float64
		fn func()
	}{})
	copy(k.events[i+1:], k.events[i:])
	k.events[i] = struct {
		t  float64
		fn func()
	}{t, fn}
}

func (k *sortedListKernel) run() int {
	n := 0
	for len(k.events) > 0 {
		e := k.events[0]
		k.events = k.events[1:]
		k.now = e.t
		e.fn()
		n++
	}
	return n
}

// eventChurn drives a kernel-shaped scheduler with a self-rescheduling
// workload of `chains` concurrent timers for `perChain` hops each — the
// access pattern simulations actually produce.
func heapChurn(chains, perChain int) time.Duration {
	k := sim.NewKernel()
	rng := workload.NewRNG(1)
	start := time.Now()
	for c := 0; c < chains; c++ {
		var hop func()
		left := perChain
		gap := rng.Float64()
		hop = func() {
			left--
			if left > 0 {
				k.After(gap, hop)
			}
		}
		k.After(gap, hop)
	}
	k.Run()
	return time.Since(start)
}

func listChurn(chains, perChain int) time.Duration {
	k := &sortedListKernel{}
	rng := workload.NewRNG(1)
	start := time.Now()
	for c := 0; c < chains; c++ {
		var hop func()
		left := perChain
		gap := rng.Float64()
		hop = func() {
			left--
			if left > 0 {
				k.after(gap, hop)
			}
		}
		k.after(gap, hop)
	}
	k.run()
	return time.Since(start)
}

// AblationEventQueue quantifies the event-queue choice: binary heap vs
// sorted-slice insertion across growing pending-set sizes.
func AblationEventQueue(size Size) *Result {
	// The sweep deliberately spans the crossover: below ~5k pending events
	// the sorted slice's memmove beats the heap's pointer chasing; above
	// it the O(n) insertion takes over.
	chainCounts := []int{1000, 10000, 30000}
	perChain := 20
	if size == Small {
		chainCounts = []int{1000, 10000}
		perChain = 10
	}
	tbl := metrics.NewTable(
		"A1 — event queue: binary heap vs sorted-slice insertion",
		"pending", "heap", "sorted_list", "speedup",
	)
	for _, chains := range chainCounts {
		h := heapChurn(chains, perChain)
		l := listChurn(chains, perChain)
		tbl.AddRow(
			fmt.Sprintf("%d", chains),
			h.Round(time.Microsecond).String(),
			l.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(l)/float64(h)),
		)
	}
	return &Result{
		ID:    "A1",
		Title: "Ablation: event-queue data structure",
		Table: tbl,
		Notes: "Expected shape: the sorted slice wins below ~5k pending events (memmove is cheap), then the heap's O(log n) insertion pulls ahead and the gap grows with the pending set.",
	}
}

// AblationFairShare quantifies what max-min fairness buys over naive
// equal-split: on the classic uneven-path scenario, equal split
// mis-allocates the fat link.
func AblationFairShare(Size) *Result {
	// Scenario from the netsim tests: X spans L1+L2, Y on L2 (1 MB/s),
	// Z on L1 (10 MB/s). Max-min: X=Y=0.5, Z=9.5 MB/s. Equal split
	// per-link: L2 gives 0.5 each (same), but L1 split equally gives
	// X=5, Z=5 — X cannot use 5 (L2 caps it at 0.5), so 4.5 MB/s of L1
	// is wasted.
	k := sim.NewKernel()
	n := netsim.New(k, 3)
	n.AddLink(0, 1, 0, 1e7)
	n.AddLink(1, 2, 0, 1e6)
	fx := n.Transfer(0, 2, 1e9, nil)
	fy := n.Transfer(1, 2, 1e9, nil)
	fz := n.Transfer(0, 1, 1e9, nil)
	k.RunUntil(0.001)

	// Equal split, computed analytically for the same scenario.
	eqX := math.Min(1e7/2, 1e6/2)
	eqZ := 1e7 / 2
	eqY := 1e6 / 2
	wastedEq := 1e7 - (eqX + eqZ) // unused L1 capacity under equal split
	wastedMM := 1e7 - (fx.Rate() + fz.Rate())

	tbl := metrics.NewTable(
		"A2 — bandwidth sharing: max-min fair vs naive equal split",
		"flow", "maxmin_rate", "equal_split", "",
	)
	tbl.AddRow("X (2 hops)", fmt.Sprintf("%.2g B/s", fx.Rate()), fmt.Sprintf("%.2g B/s", eqX), "")
	tbl.AddRow("Y (thin link)", fmt.Sprintf("%.2g B/s", fy.Rate()), fmt.Sprintf("%.2g B/s", eqY), "")
	tbl.AddRow("Z (fat link)", fmt.Sprintf("%.2g B/s", fz.Rate()), fmt.Sprintf("%.2g B/s", eqZ), "")
	tbl.AddRow("wasted fat-link capacity", fmt.Sprintf("%.2g B/s", wastedMM), fmt.Sprintf("%.2g B/s", wastedEq), "")
	return &Result{
		ID:    "A2",
		Title: "Ablation: bandwidth-sharing model",
		Table: tbl,
		Notes: "Expected shape: max-min leaves ~0 fat-link capacity unused; equal split strands ~45% of it because the 2-hop flow cannot consume its nominal share.",
	}
}

// AblationHEFTRank isolates the value of HEFT's upward-rank ordering by
// comparing full HEFT against the identical list scheduler driven in plain
// topological order (greedy-EFT).
func AblationHEFTRank(size Size) *Result {
	trials := 20
	if size == Small {
		trials = 6
	}
	rng := workload.NewRNG(5)
	spec := task.GenSpec{MeanWork: 2e10, WorkSigma: 1.2, MeanBytes: 1e7, BytesSigma: 1.0}

	var heftSum, greedySum float64
	for i := 0; i < trials; i++ {
		d := task.RandomLayered(rng.Split(), 6, 8, 3, spec)
		// A tight environment (few cores everywhere) so priority order
		// matters: with a huge cloud every order collapses to the same
		// assignment and the ablation measures nothing.
		env := tightSchedEnv()
		heftSum += placement.HEFT(env, d).EstMakespan
		greedySum += placement.ListGreedy(env, d).EstMakespan
	}
	tbl := metrics.NewTable(
		"A3 — HEFT rank ablation: upward-rank order vs plain topological order",
		"scheduler", "mean_est_makespan", "vs_heft",
	)
	tbl.AddRow("heft", metrics.FormatDuration(heftSum/float64(trials)), "1.00x")
	tbl.AddRow("greedy-eft (no ranks)", metrics.FormatDuration(greedySum/float64(trials)),
		fmt.Sprintf("%.2fx", greedySum/heftSum))
	return &Result{
		ID:    "A3",
		Title: "Ablation: HEFT upward ranks",
		Table: tbl,
		Notes: "Expected shape: rank ordering prioritizes the critical path, so greedy-EFT without ranks is >= HEFT makespan on heterogeneous DAGs.",
	}
}

// tightSchedEnv is a core-constrained heterogeneous cluster where task
// priority ordering has real consequences.
func tightSchedEnv() *placement.Env {
	return tightSchedContinuum().Env()
}

// tightSchedContinuum builds the cluster; experiments needing both the
// continuum and the env call this and derive the env themselves.
func tightSchedContinuum() *core.Continuum {
	c := core.New()
	slow := c.AddNode(node.Spec{
		Name: "slow", Class: node.Fog, Cores: 2, CoreFlops: 1e9,
		MemBytes: 8 << 30, IdleWatts: 10, ActiveWattsCore: 4,
	})
	mid := c.AddNode(node.Spec{
		Name: "mid", Class: node.Campus, Cores: 2, CoreFlops: 3e9,
		MemBytes: 32 << 30, IdleWatts: 50, ActiveWattsCore: 8,
	})
	fast := c.AddNode(node.Spec{
		Name: "fast", Class: node.Cloud, Cores: 4, CoreFlops: 8e9,
		MemBytes: 64 << 30, IdleWatts: 100, ActiveWattsCore: 10,
	})
	c.Connect(slow.ID, mid.ID, 0.002, 1.25e8)
	c.Connect(mid.ID, fast.ID, 0.020, 1.25e9)
	c.Connect(slow.ID, fast.ID, 0.022, 1.25e9)
	return c
}

// AblationBagHeuristics compares independent-task (bag-of-tasks)
// scheduling heuristics on heterogeneous bags: Min-Min packs short tasks
// first, Max-Min protects against stragglers, Sufferage weighs the cost
// of losing a task's best machine. The interesting row is the
// heavy-tailed bag, where Min-Min's short-first bias leaves the giants
// stranded.
func AblationBagHeuristics(size Size) *Result {
	trials := 15
	bagSize := 60
	if size == Small {
		trials = 5
		bagSize = 24
	}
	rng := workload.NewRNG(17)

	bags := []struct {
		name string
		mk   func(r *workload.RNG) []*task.Task
	}{
		{"uniform", func(r *workload.RNG) []*task.Task {
			sz := workload.NewUniformSize(r, 1e9, 1e10)
			out := make([]*task.Task, bagSize)
			for i := range out {
				out[i] = &task.Task{Name: "t", ScalarWork: sz.Next()}
			}
			return out
		}},
		{"heavy-tail", func(r *workload.RNG) []*task.Task {
			sz := workload.NewParetoSize(r, 1e9, 1.3)
			out := make([]*task.Task, bagSize)
			for i := range out {
				out[i] = &task.Task{Name: "t", ScalarWork: sz.Next()}
			}
			return out
		}},
	}

	tbl := metrics.NewTable(
		"A5 — bag-of-tasks heuristics (mean est. makespan, normalized to min-min)",
		"bag", "min-min", "max-min", "sufferage", "random",
	)
	for _, bag := range bags {
		var mm, xm, sf, rd float64
		for i := 0; i < trials; i++ {
			env := tightSchedContinuum().Env()
			tasks := bag.mk(rng.Split())
			mm += placement.MinMin(env, 0, tasks).EstMakespan
			xm += placement.MaxMin(env, 0, tasks).EstMakespan
			sf += placement.Sufferage(env, 0, tasks).EstMakespan
			rd += placement.BatchRandom(env, 0, tasks, rng.Split().Intn).EstMakespan
		}
		tbl.AddRow(
			bag.name,
			"1.00x",
			fmt.Sprintf("%.2fx", xm/mm),
			fmt.Sprintf("%.2fx", sf/mm),
			fmt.Sprintf("%.2fx", rd/mm),
		)
	}
	return &Result{
		ID:    "A5",
		Title: "Ablation: independent-task scheduling heuristics",
		Table: tbl,
		Notes: "Expected shape: all heuristics well below random; on uniform bags the three are close; on heavy-tailed bags max-min/sufferage close the straggler gap min-min leaves.",
	}
}

// AblationBatchSize sweeps the FaaS batcher's max batch to locate the
// throughput/latency knee.
func AblationBatchSize(size Size) *Result {
	batches := []int{1, 4, 16, 64}
	calls := 512
	conc := 32
	if size == Small {
		batches = []int{1, 16}
		calls = 128
		conc = 8
	}
	tbl := metrics.NewTable(
		"A4 — FaaS batch-size sweep (cold endpoints, 2ms provisioning)",
		"max_batch", "calls/s", "mean_lat",
	)
	for _, b := range batches {
		reg := f3Registry(100 * time.Microsecond)
		// Cold-heavy regime so batching has provisioning to amortize.
		ep := faas.NewEndpoint(faas.EndpointConfig{
			Name: "ep", Capacity: 4, ColdStart: 2 * time.Millisecond,
			WarmTTL: time.Nanosecond,
		}, reg)
		var inv faas.Invoker = ep
		var batcher *faas.Batcher
		if b > 1 {
			batcher = faas.NewBatcher(ep, b, time.Millisecond)
			inv = batcher
		}
		tput, lat := f3Drive(inv, conc, calls)
		if batcher != nil {
			batcher.Close()
		}
		tbl.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%.0f", tput),
			lat.Round(time.Microsecond).String())
	}
	return &Result{
		ID:    "A4",
		Title: "Ablation: batching threshold",
		Table: tbl,
		Notes: "Expected shape: throughput climbs with batch size while cold starts amortize, then flattens; latency grows with batch due to queueing for a full batch or the flush timer.",
	}
}
