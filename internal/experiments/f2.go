package experiments

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// F2DAGSched measures workflow makespan across schedulers and DAG scales
// on a heterogeneous continuum, executed under the full network-contention
// model (not the scheduler's own estimate).
func F2DAGSched(size Size) *Result {
	sizes := []int{10, 25, 50}
	if size == Small {
		sizes = []int{10, 25}
	}
	algos := []struct {
		name string
		run  func(env *placement.Env, d *task.DAG, rng *workload.RNG) placement.Schedule
	}{
		{"heft", func(env *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.HEFT(env, d)
		}},
		{"cpop", func(env *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.CPOP(env, d)
		}},
		{"greedy-eft", func(env *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.ListGreedy(env, d)
		}},
		{"round-robin", func(env *placement.Env, d *task.DAG, _ *workload.RNG) placement.Schedule {
			return placement.ListRoundRobin(env, d)
		}},
		{"random", func(env *placement.Env, d *task.DAG, rng *workload.RNG) placement.Schedule {
			return placement.ListRandom(env, d, rng)
		}},
	}

	tbl := metrics.NewTable(
		"F2 — workflow makespan by scheduler (measured in full simulation)",
		"dag", "tasks", "scheduler", "makespan", "vs_heft",
	)

	spec := task.GenSpec{MeanWork: 2e10, WorkSigma: 1.0, MeanBytes: 2e7, BytesSigma: 0.8}
	for _, images := range sizes {
		d := task.MontageLike(workload.NewRNG(uint64(images)), images, spec)
		var heftMs float64
		for _, algo := range algos {
			c := buildF2Continuum()
			env := c.Env()
			sched := algo.run(env, d, workload.NewRNG(7))
			st, err := c.RunDAG(d, sched, env)
			if err != nil {
				panic(fmt.Sprintf("experiments: F2 %s on %s: %v", algo.name, d.Name, err))
			}
			if algo.name == "heft" {
				heftMs = st.Makespan
			}
			ratio := st.Makespan / heftMs
			tbl.AddRow(
				d.Name,
				fmt.Sprintf("%d", d.N()),
				algo.name,
				metrics.FormatDuration(st.Makespan),
				fmt.Sprintf("%.2fx", ratio),
			)
		}
	}
	return &Result{
		ID:    "F2",
		Title: "Science-workflow scheduling across the continuum",
		Table: tbl,
		Notes: "Expected shape: heft <= cpop < greedy-eft < round-robin <= random on makespan; the HEFT advantage widens with DAG size (typically 1.5-3x vs random).",
	}
}

// buildF2Continuum assembles the heterogeneous scheduling testbed: a slow
// edge box, a mid-speed campus cluster, and a fast-but-distant cloud. The
// ~10x per-core speed spread is the regime HEFT was designed for: a
// speed-oblivious scheduler strands critical-path tasks on slow cores.
func buildF2Continuum() *core.Continuum {
	c := core.New()
	edge := c.AddNode(node.Spec{
		Name: "edge", Class: node.Fog,
		Cores: 4, CoreFlops: 1e9, MemBytes: 16 << 30,
		IdleWatts: 20, ActiveWattsCore: 5,
	})
	campus := c.AddNode(node.Spec{
		Name: "campus", Class: node.Campus,
		Cores: 8, CoreFlops: 3e9, MemBytes: 128 << 30,
		IdleWatts: 150, ActiveWattsCore: 10, DollarPerHour: 1.5,
	})
	cloud := c.AddNode(node.Spec{
		Name: "cloud", Class: node.Cloud,
		Cores: 32, CoreFlops: 1e10, MemBytes: 512 << 30,
		IdleWatts: 300, ActiveWattsCore: 12,
		DollarPerHour: 12, EgressPerByte: 9e-11,
	})
	c.Connect(edge.ID, campus.ID, 0.002, 1.25e8)  // metro
	c.Connect(campus.ID, cloud.ID, 0.020, 1.25e9) // WAN
	c.Connect(edge.ID, cloud.ID, 0.022, 1.25e9)
	return c
}
