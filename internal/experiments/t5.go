package experiments

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// T5Adaptive measures what happens when the placement cost model is
// wrong: the fog node advertises 3 GFLOPS/core but an unmodeled
// co-tenant delivers only 0.5 GFLOPS. Model-based greedy placement
// trusts the spec sheet and keeps feeding the fog; measurement-based
// UCB placement learns the truth from observed latencies and migrates to
// the honest nodes. This is the "concepts that can help guide us"
// experiment: in a continuum nobody fully models, feedback beats faith.
func T5Adaptive(size Size) *Result {
	jobsN := 600
	if size == Small {
		jobsN = 150
	}

	// One experiment cell: build the continuum where the fog's *actual*
	// speed differs from what the policy's environment advertises.
	run := func(pol placement.Policy) *core.Stats {
		c := core.New()
		gw := c.AddNode(node.Spec{
			Name: "gateway", Class: node.Gateway,
			Cores: 4, CoreFlops: 2.5e9, MemBytes: 4 << 30,
			IdleWatts: 2, ActiveWattsCore: 3,
		})
		fog := c.AddNode(node.Spec{
			Name: "fog", Class: node.Fog,
			// ACTUAL speed: crippled by an unmodeled co-tenant.
			Cores: 8, CoreFlops: 5e8, MemBytes: 64 << 30,
			IdleWatts: 40, ActiveWattsCore: 8,
		})
		cloud := c.AddNode(node.Spec{
			Name: "cloud", Class: node.Cloud,
			Cores: 32, CoreFlops: 3.2e9, MemBytes: 256 << 30,
			IdleWatts: 300, ActiveWattsCore: 12,
		})
		c.Connect(gw.ID, fog.ID, 0.002, 1.25e8)
		c.Connect(fog.ID, cloud.ID, 0.050, 1.25e9)

		// The ADVERTISED environment the model-based policy sees: same
		// topology, same nodes — except the fog claims 3 GFLOPS.
		advK := c.K // share the kernel so occupancy gauges stay live
		advertisedFog := node.New(advK, fog.ID, func() node.Spec {
			s := fog.Spec
			s.CoreFlops = 3e9
			return s
		}())
		advertisedFog.Cores = fog.Cores // share the real occupancy gauge
		advEnv := &placement.Env{
			Net:   c.Net,
			Nodes: []*node.Node{gw, advertisedFog, cloud},
		}

		// Dispatch loop: the policy decides on the advertised environment;
		// execution happens on the actual nodes.
		actualByID := map[int]*node.Node{gw.ID: gw, fog.ID: fog, cloud.ID: cloud}
		st := &core.Stats{Latency: metrics.NewHistogram(), PerNode: map[string]int64{}}
		fb, _ := pol.(placement.FeedbackPolicy)
		rng := workload.NewRNG(5)
		arr := workload.NewPoisson(rng.Split(), 10)
		submit := 0.0
		for i := 0; i < jobsN; i++ {
			submit += arr.Next()
			j := core.StreamJob{
				Task:   &task.Task{Name: "t", ScalarWork: 5e8, OutputBytes: 128},
				Origin: gw.ID,
				Submit: submit,
			}
			c.K.At(j.Submit, func() {
				chosen := pol.Select(advEnv, placement.Request{Task: j.Task, Origin: j.Origin})
				n := actualByID[chosen.ID]
				c.Net.Message(j.Origin, n.ID, 0, func() {
					n.Execute(j.Task.ScalarWork, 0, node.NoAccel, func() {
						c.Net.Message(n.ID, j.Origin, j.Task.OutputBytes, func() {
							st.Completed++
							st.PerNode[n.Name]++
							lat := c.K.Now() - j.Submit
							st.Latency.Add(lat)
							if fb != nil {
								fb.Observe(n.ID, lat)
							}
						})
					})
				})
			})
		}
		c.K.Run()
		return st
	}

	tbl := metrics.NewTable(
		"T5 — placement when the cost model lies (fog advertises 6x its real speed)",
		"policy", "mean_lat", "p99_lat", "fog_share", "best_node_share",
	)
	for _, pol := range []placement.Policy{
		placement.GreedyLatency{},
		placement.NewAdaptive(0.05),
		placement.CloudOnly{},
	} {
		st := run(pol)
		fogShare := float64(st.PerNode["fog"]) / float64(st.Completed)
		// With the true speeds, the gateway is the best host for these
		// 0.2s tasks (local, honest 2.5 GFLOPS).
		bestShare := float64(st.PerNode["gateway"]) / float64(st.Completed)
		tbl.AddRow(
			pol.Name(),
			metrics.FormatDuration(st.Latency.Mean()),
			metrics.FormatDuration(st.Latency.P99()),
			fmt.Sprintf("%.0f%%", fogShare*100),
			fmt.Sprintf("%.0f%%", bestShare*100),
		)
	}
	return &Result{
		ID:    "T5",
		Title: "Measurement vs model: adaptive placement under misinformation",
		Table: tbl,
		Notes: "Expected shape: model-based greedy keeps feeding the lying fog (high fog_share) and pays well above the honest optimum; adaptive UCB samples every node, abandons the fog, concentrates on the true-best gateway (high best_node_share) and wins on mean latency; cloud-only is immune to the lie but pays the WAN on every call.",
	}
}
