package experiments

import (
	"fmt"

	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/sim"
	"continuum/internal/simfaas"
	"continuum/internal/workload"
)

// F9Routing studies request routing for federated serverless at
// continuum scale (virtual time, hundreds of endpoints): clients cluster
// into metro regions, each with a local endpoint pool, but demand is
// skewed — one region is a hotspot. Nearest routing gives minimum RTT
// until the hotspot saturates; least-loaded spreads perfectly but drags
// every request across the WAN; power-of-two-choices and nearest-spill
// are the practical compromises. The crossover as skew grows is the
// figure.
func F9Routing(size Size) *Result {
	regions := 8
	epsPerRegion := 4
	invocations := 4000
	if size == Small {
		regions = 4
		epsPerRegion = 2
		invocations = 800
	}

	// hotFracs: fraction of demand concentrated on region 0.
	hotFracs := []float64{0.125, 0.5, 0.9}
	if size == Small {
		hotFracs = []float64{0.25, 0.9}
	}

	type cell struct {
		mean, p99 float64
	}
	run := func(mkPol func(rng *workload.RNG) simfaas.Policy, hotFrac float64) cell {
		k := sim.NewKernel()
		// Topology: per-region client vertex and endpoint vertices; metro
		// links 2ms, inter-region WAN 30ms via a core vertex.
		net := netsim.New(k, 1+regions*(1+epsPerRegion))
		coreV := 0
		rng := workload.NewRNG(uint64(regions)*1000 + uint64(hotFrac*100))
		var eps []*simfaas.Endpoint
		clients := make([]int, regions)
		v := 1
		for rg := 0; rg < regions; rg++ {
			clients[rg] = v
			v++
			net.AddDuplexLink(clients[rg], coreV, 0.030, 1.25e9)
			for e := 0; e < epsPerRegion; e++ {
				epV := v
				v++
				net.AddDuplexLink(epV, clients[rg], 0.002, 1.25e9)
				eps = append(eps, simfaas.NewEndpoint(
					k, epV, fmt.Sprintf("r%de%d", rg, e), 4, 0.2, 120))
			}
		}
		r := simfaas.NewRouter(net, mkPol(rng.Split()), eps...)

		lat := metrics.NewHistogram()
		arr := workload.NewPoisson(rng.Split(), 200) // aggregate arrival rate
		at := 0.0
		for i := 0; i < invocations; i++ {
			at += arr.Next()
			origin := clients[0]
			if rng.Float64() >= hotFrac {
				origin = clients[1+rng.Intn(regions-1)]
			}
			submit := at
			k.At(submit, func() {
				r.Invoke(origin, "f", 1e3, 1e3, 0.050, func(l float64) {
					lat.Add(l)
				})
			})
		}
		k.Run()
		return cell{lat.Mean(), lat.P99()}
	}

	policies := []struct {
		name string
		mk   func(rng *workload.RNG) simfaas.Policy
	}{
		{"nearest", func(*workload.RNG) simfaas.Policy { return simfaas.Nearest{} }},
		{"least-loaded", func(*workload.RNG) simfaas.Policy { return simfaas.LeastLoaded{} }},
		{"two-choices", func(rng *workload.RNG) simfaas.Policy { return simfaas.TwoChoices{RNG: rng} }},
		{"nearest-spill", func(*workload.RNG) simfaas.Policy { return simfaas.NearestUnderLoad{Threshold: 2} }},
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("F9 — serverless routing at scale (%d endpoints, hotspot sweep)", regions*epsPerRegion),
		"hot_frac", "policy", "mean_lat", "p99_lat",
	)
	for _, hf := range hotFracs {
		for _, p := range policies {
			c := run(p.mk, hf)
			tbl.AddRow(
				fmt.Sprintf("%.0f%%", hf*100),
				p.name,
				metrics.FormatDuration(c.mean),
				metrics.FormatDuration(c.p99),
			)
		}
	}
	return &Result{
		ID:    "F9",
		Title: "Routing federated serverless under demand skew",
		Table: tbl,
		Notes: "Expected shape: under uniform demand nearest wins (metro RTT only); as the hotspot concentrates, nearest saturates the hot region's pool and its p99 explodes while least-loaded stays flat (it always pays the WAN); nearest-spill tracks the better of the two across the sweep.",
	}
}
