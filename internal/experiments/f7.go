package experiments

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/placement"
	"continuum/internal/workload"
)

// F7Reliability extends the placement question to the continuum's
// defining reality: the edge fails. Gateways flap with decreasing MTBF
// while the cloud stays up; failure-aware policies re-dispatch lost work.
// Edge-favoring placement wins latency only while the edge is healthy;
// as MTBF approaches the task duration, retries erase the edge advantage
// and the latency-optimal placement migrates inward — reliability is a
// placement input, not an afterthought.
//
// The reliable runs here execute on the same core engine as T1's base
// runs (fault-awareness is a hook, not a fork), so the latency columns
// are directly comparable across the two experiments.
func F7Reliability(size Size) *Result {
	// MTBF sweep in seconds of gateway uptime; tasks take ~0.2s on a
	// gateway core, so the last rows approach the task scale.
	mtbfs := []float64{1000, 30, 5, 1}
	horizon := 30.0
	gateways, sensorsPer := 4, 4
	if size == Small {
		mtbfs = []float64{1000, 5}
		horizon = 8.0
		gateways, sensorsPer = 2, 2
	}
	const mttr = 2.0

	tbl := metrics.NewTable(
		"F7 — placement under edge failures (gateway MTBF sweep, MTTR 2s)",
		"gw_mtbf", "policy", "success", "retries", "mean_lat", "cloud_share",
	)

	for _, mtbf := range mtbfs {
		for _, pol := range []placement.Policy{
			placement.EdgeOnly{},
			placement.CloudOnly{},
			placement.GreedyLatency{},
		} {
			tt := core.BuildThreeTier(core.DefaultThreeTierParams(gateways, sensorsPer))
			inj := fault.NewInjector(tt.K, workload.NewRNG(99), horizon*3)
			faults := make(map[int]*fault.Target)
			for _, gw := range tt.Gateways {
				faults[gw.ID] = inj.Attach(gw.Name, fault.Spec{MeanUp: mtbf, MeanDown: mttr})
			}
			jobs := t1Jobs(tt, workload.NewRNG(42), 5, horizon)
			st := tt.RunStreamReliable(pol, jobs, tt.ComputeNodes(), core.ReliableOptions{
				Faults:     faults,
				MaxRetries: 5,
			})
			cloudShare := 0.0
			if st.Completed > 0 {
				cloudShare = float64(st.PerNode["cloud"]) / float64(st.Completed)
			}
			tbl.AddRow(
				fmt.Sprintf("%.0fs", mtbf),
				pol.Name(),
				fmt.Sprintf("%.1f%%", st.SuccessRate()*100),
				fmt.Sprintf("%d", st.Retries),
				metrics.FormatDuration(st.Latency.Mean()),
				fmt.Sprintf("%.0f%%", cloudShare*100),
			)
		}
	}
	return &Result{
		ID:    "F7",
		Title: "Reliability as a placement input (flaky edge)",
		Table: tbl,
		Notes: "Expected shape: at high MTBF all policies succeed and edge placement is cheap; as MTBF falls toward the task scale, edge-only accumulates retries and its mean latency climbs, cloud-only is failure-immune at constant latency, and failure-aware greedy drifts work toward the cloud.",
	}
}
