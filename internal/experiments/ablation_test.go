package experiments

import (
	"strings"
	"testing"
)

func TestAblationsRegistered(t *testing.T) {
	if len(Ablations()) != 5 {
		t.Fatalf("ablations = %d", len(Ablations()))
	}
	if LookupAblation("A1") == nil || LookupAblation("A9") != nil {
		t.Fatal("LookupAblation wrong")
	}
}

func TestAblationEventQueueShape(t *testing.T) {
	r := AblationEventQueue(Small)
	rows := csvRows(t, r)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At 10000 pending the heap must win.
	last := rows[len(rows)-1]
	speedup := num(t, last[3])
	if speedup < 1.0 {
		t.Fatalf("heap speedup %vx < 1 at %s pending", speedup, last[0])
	}
}

func TestAblationFairShareShape(t *testing.T) {
	r := AblationFairShare(Small)
	rows := csvRows(t, r)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Max-min wastes (row 4, col 1) must be far below equal split (col 2).
	if !strings.Contains(rows[3][0], "wasted") {
		t.Fatalf("unexpected last row: %v", rows[3])
	}
}

func TestAblationHEFTRankShape(t *testing.T) {
	r := AblationHEFTRank(Small)
	rows := csvRows(t, r)
	ratio := num(t, rows[1][2])
	if ratio < 1.0 {
		t.Fatalf("greedy-eft %vx better than HEFT; rank ordering should not lose", ratio)
	}
}

func TestAblationBatchSizeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	r := AblationBatchSize(Small)
	rows := csvRows(t, r)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Batch=16 must beat batch=1 on throughput in the cold-heavy regime.
	if num(t, rows[1][1]) <= num(t, rows[0][1]) {
		t.Fatalf("batching did not raise throughput: %v vs %v", rows[1][1], rows[0][1])
	}
}
