package experiments

import (
	"fmt"

	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/sim"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// F4ApplianceSweep answers "for what workloads should I design computers":
// fix a silicon budget and sweep the fraction devoted to a specialized
// tensor appliance vs general cores, against a workload that is 30%
// tensor-heavy. Throughput per watt and per dollar peak at an interior
// fraction matched to the workload mix — specialization pays exactly as
// far as the workload can use it.
func F4ApplianceSweep(size Size) *Result {
	fractions := []float64{0, 0.25, 0.5, 0.75, 0.9}
	nTasks := 400
	if size == Small {
		nTasks = 100
	}

	const (
		budgetFlops   = 64e9 // scalar-equivalent silicon budget
		accelLeverage = 50.0 // flops of tensor silicon per scalar flop of budget
		coreFlops     = 4e9  // per core
		tensorShare   = 0.3  // fraction of tasks that are tensor-heavy
	)

	tbl := metrics.NewTable(
		"F4 — appliance design space: accelerator fraction of a fixed budget",
		"accel_frac", "cores", "accel_tflops", "makespan", "tasks/s", "tasks/kJ", "tasks/$",
	)

	for _, frac := range fractions {
		cores := int((1 - frac) * budgetFlops / coreFlops)
		if cores < 1 {
			cores = 1
		}
		accelFlops := frac * budgetFlops * accelLeverage

		spec := node.Spec{
			Name: "appliance", Class: node.Campus,
			Cores: cores, CoreFlops: coreFlops, MemBytes: 1 << 40,
			IdleWatts: 100, ActiveWattsCore: 10,
			DollarPerHour: 3,
		}
		if accelFlops > 0 {
			spec.Accel = node.Accelerator{Kind: node.TPU, Count: 1, Flops: accelFlops, Watts: 200}
		}

		k := sim.NewKernel()
		n := node.New(k, 0, spec)
		rng := workload.NewRNG(11)

		remaining := nTasks
		for i := 0; i < nTasks; i++ {
			tk := &task.Task{Name: "t"}
			if rng.Float64() < tensorShare {
				tk.TensorWork = 2e11 // tensor-heavy (e.g. inference batch)
				tk.Accel = node.TPU
			} else {
				tk.ScalarWork = 4e9 // 1s on one core
			}
			n.Execute(tk.ScalarWork, tk.TensorWork, tk.Accel, func() { remaining-- })
		}
		k.Run()
		if remaining != 0 {
			panic(fmt.Sprintf("experiments: F4 left %d tasks unfinished", remaining))
		}

		makespan := k.Now()
		joules := n.Meter.Joules()
		dollars := n.DollarCost(makespan)
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%d", cores),
			fmt.Sprintf("%.1f", accelFlops/1e12),
			metrics.FormatDuration(makespan),
			fmt.Sprintf("%.1f", float64(nTasks)/makespan),
			fmt.Sprintf("%.1f", float64(nTasks)/(joules/1000)),
			fmt.Sprintf("%.0f", float64(nTasks)/dollars),
		)
	}
	return &Result{
		ID:    "F4",
		Title: "For what workloads should I design computers? (specialization sweep)",
		Table: tbl,
		Notes: "Expected shape: with a 30% tensor workload, throughput/W and throughput/$ peak at an interior accelerator fraction; 0% wastes the tensor tasks on slow cores, 90% starves the scalar majority of cores.",
	}
}
