package experiments

import (
	"fmt"

	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/sim"
)

// F1Gilder reproduces the keynote's framing observation: Gilder predicted
// that once networks rival internal links, the machine disintegrates. We
// fix an analysis task (B bytes of data, F flops of compute) with the data
// born at a slow edge device, and ask when *shipping the data* to a fast
// central machine beats *computing where the data is*. Sweeping link
// bandwidth from a 2001-era 10 Mbit/s to 1000x that (the abstract's "our
// networks are 1,000 times faster"), the crossover data size grows by
// three orders of magnitude — at modern bandwidth nearly every task should
// ship, i.e. the machine disintegrates across the net.
//
// Each row is validated two ways: the analytic crossover from the cost
// model, and a discrete-event simulation of both strategies at the
// crossover's two sides.
func F1Gilder(Size) *Result {
	const (
		baseBW    = 1.25e6 // 10 Mbit/s in bytes/sec (2001 baseline)
		linkLat   = 0.010  // 10 ms one-way
		edgeFlops = 1e9    // slow device
		hubFlops  = 64e9   // fast central machine (effective)
		workF     = 1e10   // reference task: 10 Gflop
	)
	tbl := metrics.NewTable(
		"F1 — Gilder crossover: data size where shipping beats local compute",
		"bw_mult", "bandwidth", "crossover_bytes", "ref_1GB_local", "ref_1GB_ship", "ref_winner", "sim_agrees",
	)

	for _, mult := range []float64{1, 10, 100, 1000} {
		bw := baseBW * mult
		// local = F/edge. ship = lat + B/bw + F/hub. Equal at:
		// B* = bw * (F/edge - F/hub - lat)
		crossover := bw * (workF/edgeFlops - workF/hubFlops - linkLat)

		refB := 1e9 // 1 GB reference dataset
		local := workF / edgeFlops
		ship := linkLat + refB/bw + workF/hubFlops
		winner := "local"
		if ship < local {
			winner = "ship"
		}

		simWinner := simulateF1(refB, workF, linkLat, bw, edgeFlops, hubFlops)
		agrees := "yes"
		if winner != simWinner {
			agrees = "NO"
		}

		tbl.AddRow(
			fmt.Sprintf("x%.0f", mult),
			metrics.FormatBytes(bw)+"/s",
			metrics.FormatBytes(crossover),
			metrics.FormatDuration(local),
			metrics.FormatDuration(ship),
			winner,
			agrees,
		)
	}
	return &Result{
		ID:    "F1",
		Title: "Gilder crossover (compute-local vs ship-the-data)",
		Table: tbl,
		Notes: "Expected shape: crossover grows linearly with bandwidth (~3 orders of magnitude over the sweep); the 1GB reference task flips from local to ship as bandwidth rises.",
	}
}

// simulateF1 runs both strategies in the DES and returns the winner.
func simulateF1(bytes, flops, lat, bw, edgeFlops, hubFlops float64) string {
	run := func(ship bool) float64 {
		k := sim.NewKernel()
		net := netsim.New(k, 2)
		net.AddDuplexLink(0, 1, lat, bw)
		edge := node.New(k, 0, node.Spec{
			Name: "edge", Class: node.Gateway, Cores: 1, CoreFlops: edgeFlops,
			MemBytes: 1 << 30,
		})
		hub := node.New(k, 1, node.Spec{
			Name: "hub", Class: node.Cloud, Cores: 1, CoreFlops: hubFlops,
			MemBytes: 1 << 40,
		})
		var done float64
		if ship {
			net.Transfer(0, 1, bytes, func(*netsim.Flow) {
				hub.Execute(flops, 0, node.NoAccel, func() { done = k.Now() })
			})
		} else {
			edge.Execute(flops, 0, node.NoAccel, func() { done = k.Now() })
		}
		k.Run()
		return done
	}
	if run(true) < run(false) {
		return "ship"
	}
	return "local"
}
