package experiments

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// t1Policies returns the policy set the placement table compares.
func t1Policies() []placement.Policy {
	return []placement.Policy{
		placement.EdgeOnly{},
		placement.CloudOnly{},
		placement.GreedyLatency{},
		placement.GreedyEnergy{},
		&placement.RoundRobin{},
	}
}

// t1Jobs generates the IoT analytics workload: every sensor submits
// Poisson-arriving analysis tasks (parse+featurize+infer rolled into one
// 5e8-flop unit with 1KB in, 128B out) for the given horizon.
func t1Jobs(tt *core.ThreeTier, rng *workload.RNG, ratePerSensor float64, horizon float64) []core.StreamJob {
	var jobs []core.StreamJob
	for g := range tt.Sensors {
		for _, s := range tt.Sensors[g] {
			arr := workload.NewPoisson(rng.Split(), ratePerSensor)
			t := 0.0
			for {
				t += arr.Next()
				if t > horizon {
					break
				}
				jobs = append(jobs, core.StreamJob{
					Task: &task.Task{
						Name:        "analyze",
						ScalarWork:  5e8,
						OutputBytes: 128,
						Inputs:      []task.DataRef{{Name: "reading", Bytes: 1024}},
					},
					Origin: s.ID,
					Submit: t,
				})
			}
		}
	}
	return jobs
}

// T1Placement answers "where should I compute" for the motivating IoT
// analytics workload: per-policy mean/p99 latency, energy, and WAN egress
// across an arrival-rate sweep on the three-tier continuum.
func T1Placement(size Size) *Result {
	rates := []float64{2, 10, 25}
	horizon := 20.0
	gateways, sensorsPer := 4, 4
	if size == Small {
		rates = []float64{2, 10}
		horizon = 5.0
		gateways, sensorsPer = 2, 2
	}

	tbl := metrics.NewTable(
		"T1 — placement policies on the IoT analytics pipeline",
		"rate/sensor", "policy", "mean_lat", "p99_lat", "joules", "egress", "cloud_share",
	)

	for _, rate := range rates {
		for _, pol := range t1Policies() {
			tt := core.BuildThreeTier(core.DefaultThreeTierParams(gateways, sensorsPer))
			jobs := t1Jobs(tt, workload.NewRNG(42), rate, horizon)
			st := tt.RunStream(pol, jobs, tt.ComputeNodes())

			cloudShare := float64(st.PerNode["cloud"]) / float64(st.Completed)
			tbl.AddRow(
				fmt.Sprintf("%.0f/s", rate),
				pol.Name(),
				metrics.FormatDuration(st.Latency.Mean()),
				metrics.FormatDuration(st.Latency.P99()),
				fmt.Sprintf("%.0fJ", st.Joules),
				metrics.FormatBytes(st.EgressB),
				fmt.Sprintf("%.0f%%", cloudShare*100),
			)
		}
	}
	return &Result{
		ID:    "T1",
		Title: "Where should I compute? (policy comparison, IoT pipeline)",
		Table: tbl,
		Notes: "Expected shape: edge-only wins latency at low rates but saturates as rate grows; cloud-only pays the WAN RTT and all the egress; greedy-latency tracks the better of the two at every rate; greedy-energy avoids the power-hungry cloud.",
	}
}
