// Package experiments implements the reconstructed evaluation of the
// reproduction: one function per table/figure indexed in DESIGN.md. Each
// returns a Result whose Table prints the rows the figure/table would
// plot, so `continuum-bench -exp <id>` and the top-level benchmarks both
// regenerate the full evaluation.
//
// Scale parameters accept a Size knob so benchmarks can run trimmed
// versions; the CLI defaults to full size.
package experiments

import (
	"fmt"

	"continuum/internal/metrics"
)

// Size scales an experiment: Small for quick benchmark iterations, Full
// for the numbers recorded in EXPERIMENTS.md.
type Size int

// Experiment sizes.
const (
	Small Size = iota
	Full
)

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	Table *metrics.Table
	// Notes records the qualitative expectation the measured rows are
	// checked against in EXPERIMENTS.md.
	Notes string
}

// String renders the result header and table.
func (r *Result) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s\n%s", r.ID, r.Title, r.Table, r.Notes)
}

// Runner produces one experiment at a given size.
type Runner func(Size) *Result

// All returns the experiment registry in presentation order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"F1", F1Gilder},
		{"T1", T1Placement},
		{"F2", F2DAGSched},
		{"F3", F3FaaS},
		{"T2", T2DataFabric},
		{"F4", F4ApplianceSweep},
		{"T3", T3Facility},
		{"F5", F5SimScaling},
		{"T4", T4Pareto},
		{"F6", F6LightWall},
		{"F7", F7Reliability},
		{"T5", T5Adaptive},
		{"F8", F8Elasticity},
		{"F9", F9Routing},
		{"F10", F10Workflow},
		{"F11", F11Speculation},
	}
}

// Lookup finds an experiment by id (case-sensitive), or nil.
func Lookup(id string) Runner {
	for _, e := range All() {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}
