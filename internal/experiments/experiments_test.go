package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse helpers -------------------------------------------------------------

// cell extracts row r, column c from a rendered table (whitespace-split is
// unsafe; we re-run via CSV instead).
func csvRows(t *testing.T, r *Result) [][]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(r.Table.CSV()), "\n")
	var rows [][]string
	for _, ln := range lines[1:] { // skip header
		rows = append(rows, splitCSV(ln))
	}
	return rows
}

// splitCSV handles the simple quoting Table.CSV emits.
func splitCSV(ln string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	for i := 0; i < len(ln); i++ {
		ch := ln[i]
		switch {
		case inQ && ch == '"' && i+1 < len(ln) && ln[i+1] == '"':
			cur.WriteByte('"')
			i++
		case ch == '"':
			inQ = !inQ
		case ch == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(ch)
		}
	}
	out = append(out, cur.String())
	return out
}

func pct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "$"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad number %q: %v", s, err)
	}
	return v
}

// experiment smoke + shape tests --------------------------------------------

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	want := []string{"F1", "T1", "F2", "F3", "T2", "F4", "T3", "F5", "T4", "F6", "F7", "T5", "F8", "F9", "F10"}
	for _, id := range want {
		if !ids[id] {
			t.Fatalf("missing experiment %s", id)
		}
		if Lookup(id) == nil {
			t.Fatalf("Lookup(%s) = nil", id)
		}
	}
	if Lookup("nope") != nil {
		t.Fatal("phantom experiment")
	}
}

func TestF1Shape(t *testing.T) {
	r := F1Gilder(Small)
	rows := csvRows(t, r)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The 1GB reference task must flip from local to ship across the sweep.
	if rows[0][5] != "local" {
		t.Fatalf("2001 bandwidth winner = %s, want local", rows[0][5])
	}
	if rows[len(rows)-1][5] != "ship" {
		t.Fatalf("x1000 winner = %s, want ship (disintegration)", rows[len(rows)-1][5])
	}
	// Simulation must corroborate the analytic winner everywhere.
	for i, row := range rows {
		if row[6] != "yes" {
			t.Fatalf("row %d: simulation disagrees with analytic model", i)
		}
	}
}

func TestT1Shape(t *testing.T) {
	r := T1Placement(Small)
	rows := csvRows(t, r)
	byKey := map[string][]string{}
	for _, row := range rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// Cloud-only must carry WAN egress; edge-only none.
	for rate := range map[string]bool{"2/s": true, "10/s": true} {
		cloud := byKey[rate+"/cloud-only"]
		edge := byKey[rate+"/edge-only"]
		if cloud == nil || edge == nil {
			t.Fatalf("missing rows for rate %s", rate)
		}
		if cloud[5] == "0B" {
			t.Fatalf("cloud-only shows no egress at %s", rate)
		}
		if edge[5] != "0B" {
			t.Fatalf("edge-only shows egress %s at %s", edge[5], rate)
		}
		if pct(t, cloud[6]) != 100 {
			t.Fatalf("cloud-only cloud_share = %s", cloud[6])
		}
		if pct(t, edge[6]) != 0 {
			t.Fatalf("edge-only cloud_share = %s", edge[6])
		}
	}
}

func TestF2Shape(t *testing.T) {
	r := F2DAGSched(Small)
	rows := csvRows(t, r)
	// Group by DAG; HEFT ratio is 1.0 and random's ratio >= heft's.
	for _, row := range rows {
		if row[2] == "heft" && num(t, row[4]) != 1.0 {
			t.Fatalf("heft vs_heft = %s", row[4])
		}
	}
	// On the larger DAG, random should be noticeably worse than HEFT.
	var randRatio float64
	for _, row := range rows {
		if row[2] == "random" {
			randRatio = num(t, row[4]) // keep last (largest DAG)
		}
	}
	if randRatio < 1.05 {
		t.Fatalf("random only %.2fx of HEFT; expected a visible gap", randRatio)
	}
}

func TestT2Shape(t *testing.T) {
	r := T2DataFabric(Small)
	rows := csvRows(t, r)
	var nocacheHit, lruHit float64
	var lruSaved float64
	for _, row := range rows {
		switch row[1] {
		case "nocache":
			nocacheHit = pct(t, row[2])
		case "lru":
			lruHit = pct(t, row[2])
			lruSaved = pct(t, row[4])
		}
	}
	if nocacheHit != 0 {
		t.Fatalf("nocache hit rate = %v", nocacheHit)
	}
	if lruHit <= 10 {
		t.Fatalf("LRU hit rate = %v%%, expected a real cache effect", lruHit)
	}
	if lruSaved <= 5 {
		t.Fatalf("LRU WAN savings = %v%%, expected > 5%%", lruSaved)
	}
}

func TestF4Shape(t *testing.T) {
	r := F4ApplianceSweep(Small)
	rows := csvRows(t, r)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Throughput per joule must peak at an interior fraction.
	best, bestIdx := 0.0, -1
	for i, row := range rows {
		v := num(t, row[5])
		if v > best {
			best, bestIdx = v, i
		}
	}
	if bestIdx == 0 || bestIdx == len(rows)-1 {
		t.Fatalf("tasks/kJ peaks at extreme row %d; expected interior peak", bestIdx)
	}
}

func TestT3Shape(t *testing.T) {
	r := T3Facility(Small)
	rows := csvRows(t, r)
	// Greedy must beat random at every k (mean RTT column, parse units).
	parseDur := func(s string) float64 {
		// FormatDuration emits e.g. "12.3ms", "1.2s", "15.0µs".
		switch {
		case strings.HasSuffix(s, "µs"):
			return num(t, strings.TrimSuffix(s, "µs")) * 1e-6
		case strings.HasSuffix(s, "ms"):
			return num(t, strings.TrimSuffix(s, "ms")) * 1e-3
		case strings.HasSuffix(s, "min"):
			return num(t, strings.TrimSuffix(s, "min")) * 60
		case strings.HasSuffix(s, "ns"):
			return num(t, strings.TrimSuffix(s, "ns")) * 1e-9
		default:
			return num(t, strings.TrimSuffix(s, "s"))
		}
	}
	byK := map[string]map[string]float64{}
	for _, row := range rows {
		if byK[row[0]] == nil {
			byK[row[0]] = map[string]float64{}
		}
		byK[row[0]][row[1]] = parseDur(row[2])
	}
	for k, m := range byK {
		if m["greedy"] > m["random"] {
			t.Fatalf("k=%s greedy %v worse than random %v", k, m["greedy"], m["random"])
		}
	}
}

func TestF5Runs(t *testing.T) {
	r := F5SimScaling(Small)
	rows := csvRows(t, r)
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		cold, warm := num(t, row[3]), num(t, row[5])
		if cold <= 0 || warm <= 0 {
			t.Fatalf("nonpositive event rate: %v", row)
		}
		if warm < cold/2 {
			t.Fatalf("warm rate %v far below cold %v: cache not helping", warm, cold)
		}
	}
}

func TestT4Shape(t *testing.T) {
	r := T4Pareto(Small)
	rows := csvRows(t, r)
	onFront := 0
	for _, row := range rows {
		if row[4] == "*" {
			onFront++
		}
	}
	if onFront < 2 {
		t.Fatalf("Pareto front has %d points; expected >= 2 (no single winner)", onFront)
	}
}

func TestF6Shape(t *testing.T) {
	r := F6LightWall(Small)
	rows := csvRows(t, r)
	// First row (1µs service): propagation-bound even at 1km.
	if pct(t, strings.TrimSuffix(rows[0][1], "%")+"%") < 50 {
		t.Fatalf("1µs/1km propagation share %s, want >= 50%%", rows[0][1])
	}
	// Last row (1s service): distance irrelevant at 10000km.
	if pct(t, strings.TrimSuffix(rows[len(rows)-1][4], "%")+"%") > 50 {
		t.Fatalf("1s/10000km propagation share %s, want < 50%%", rows[len(rows)-1][4])
	}
	// Share must be monotone nondecreasing in distance per row.
	for _, row := range rows {
		prev := -1.0
		for c := 1; c <= 4; c++ {
			v := pct(t, row[c])
			if v < prev-1e-9 {
				t.Fatalf("propagation share not monotone in distance: %v", row)
			}
			prev = v
		}
	}
}

func TestF7Shape(t *testing.T) {
	r := F7Reliability(Small)
	rows := csvRows(t, r)
	byKey := map[string][]string{}
	for _, row := range rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// Cloud-only never retries; edge-only retries grow as MTBF falls.
	for _, mtbf := range []string{"1000s", "5s"} {
		if cloud := byKey[mtbf+"/cloud-only"]; num(t, cloud[3]) != 0 {
			t.Fatalf("cloud-only retried at %s: %v", mtbf, cloud)
		}
	}
	stable := num(t, byKey["1000s/edge-only"][3])
	flaky := num(t, byKey["5s/edge-only"][3])
	if flaky <= stable {
		t.Fatalf("edge-only retries did not grow with failures: %v -> %v", stable, flaky)
	}
	// Success rates stay reported and parseable everywhere.
	for k, row := range byKey {
		if pct(t, row[2]) < 50 {
			t.Fatalf("%s success collapsed: %v", k, row)
		}
	}
}

func TestT5Shape(t *testing.T) {
	r := T5Adaptive(Small)
	rows := csvRows(t, r)
	byPol := map[string][]string{}
	for _, row := range rows {
		byPol[row[0]] = row
	}
	greedyFog := pct(t, byPol["greedy-latency"][3])
	adaptFog := pct(t, byPol["adaptive-ucb"][3])
	if adaptFog >= greedyFog {
		t.Fatalf("adaptive fog share %v not below greedy %v", adaptFog, greedyFog)
	}
	if best := pct(t, byPol["adaptive-ucb"][4]); best < 50 {
		t.Fatalf("adaptive best-node share %v%%, expected convergence", best)
	}
}

func TestF8Shape(t *testing.T) {
	r := F8Elasticity(Small)
	rows := csvRows(t, r)
	byFleet := map[string][]string{}
	for _, row := range rows {
		byFleet[row[0]] = row
	}
	smallSec := num(t, byFleet["static-1"][3])
	bigSec := num(t, byFleet["static-10"][3])
	if bigSec <= smallSec {
		t.Fatalf("static-10 node-seconds %v not above static-1 %v", bigSec, smallSec)
	}
	// Every elastic fleet must be cheaper than static-10 and provision
	// cold capacity at least once.
	for name, row := range byFleet {
		if name == "static-1" || name == "static-10" {
			continue
		}
		if es := num(t, row[3]); es >= bigSec {
			t.Fatalf("%s node-seconds %v not below static-10 %v", name, es, bigSec)
		}
		if num(t, row[4]) == 0 {
			t.Fatalf("%s never cold-provisioned", name)
		}
	}
}

func TestF9Shape(t *testing.T) {
	r := F9Routing(Small)
	rows := csvRows(t, r)
	byKey := map[string][]string{}
	var hotFracs []string
	for _, row := range rows {
		byKey[row[0]+"/"+row[1]] = row
		if len(hotFracs) == 0 || hotFracs[len(hotFracs)-1] != row[0] {
			hotFracs = append(hotFracs, row[0])
		}
	}
	parse := func(row []string) float64 { return durSeconds(t, row[2]) }
	low, high := hotFracs[0], hotFracs[len(hotFracs)-1]
	// Nearest must degrade sharply under the hotspot.
	if parse(byKey[high+"/nearest"]) < 3*parse(byKey[low+"/nearest"]) {
		t.Fatalf("nearest did not degrade under skew: %v vs %v",
			byKey[low+"/nearest"][2], byKey[high+"/nearest"][2])
	}
	// The hybrid must beat plain nearest at the hotspot extreme.
	if parse(byKey[high+"/nearest-spill"]) >= parse(byKey[high+"/nearest"]) {
		t.Fatal("nearest-spill no better than nearest under skew")
	}
}

// durSeconds parses metrics.FormatDuration output.
func durSeconds(t *testing.T, s string) float64 {
	t.Helper()
	switch {
	case strings.HasSuffix(s, "µs"):
		return num(t, strings.TrimSuffix(s, "µs")) * 1e-6
	case strings.HasSuffix(s, "ms"):
		return num(t, strings.TrimSuffix(s, "ms")) * 1e-3
	case strings.HasSuffix(s, "min"):
		return num(t, strings.TrimSuffix(s, "min")) * 60
	case strings.HasSuffix(s, "ns"):
		return num(t, strings.TrimSuffix(s, "ns")) * 1e-9
	default:
		return num(t, strings.TrimSuffix(s, "s"))
	}
}

func TestF10Shape(t *testing.T) {
	r := F10Workflow(Small)
	rows := csvRows(t, r)
	if rows[0][0] != "none" || num(t, rows[0][2]) != 1.0 {
		t.Fatalf("baseline row wrong: %v", rows[0])
	}
	last := rows[len(rows)-1]
	if num(t, last[2]) <= 1.0 {
		t.Fatalf("no makespan inflation under failures: %v", last)
	}
	if num(t, last[3]) == 0 {
		t.Fatalf("no retries under MTBF ~ task scale: %v", last)
	}
	// Everything must still complete (that is what retry buys).
	for _, row := range rows {
		parts := strings.Split(row[4], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("incomplete workflow: %v", row)
		}
	}
}

func TestF3RunsQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	r := F3FaaS(Small)
	rows := csvRows(t, r)
	// Warm throughput must beat cold at the same concurrency.
	byMode := map[string]float64{}
	for _, row := range rows {
		if row[0] == "8" {
			byMode[row[1]] = num(t, row[2])
		}
	}
	if byMode["warm"] <= byMode["cold"] {
		t.Fatalf("warm %v not faster than cold %v", byMode["warm"], byMode["cold"])
	}
}
