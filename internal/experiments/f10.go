package experiments

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// F10Workflow measures what task-level retry (checkpointing completed
// outputs) costs a science workflow on a flaky continuum: an
// Epigenomics-like pipeline is HEFT-scheduled onto a testbed whose edge
// node fails with decreasing MTBF, and the makespan inflation over the
// failure-free run is the figure. Completed tasks survive failures; only
// in-flight work is lost — the checkpointing argument, quantified.
//
// The reliable runs here execute on the same core engine as F2's base
// runs (fault-awareness is a hook, not a fork), so the makespan
// inflation column isolates the cost of failures, not runner drift.
func F10Workflow(size Size) *Result {
	lanes, depth := 4, 5
	mtbfs := []float64{1e9, 30, 10, 3}
	if size == Small {
		lanes, depth = 2, 3
		mtbfs = []float64{1e9, 3}
	}
	const mttr = 5.0

	d := task.EpigenomicsLike(workload.NewRNG(2019), lanes, depth, task.GenSpec{
		MeanWork: 1e10, WorkSigma: 0.6, MeanBytes: 1e7, BytesSigma: 0.5,
	})

	run := func(mtbf float64) (*core.ReliableStats, error) {
		// Core-constrained heterogeneous cluster: HEFT must spread work,
		// so every node's failures matter.
		c := tightSchedContinuum()
		env := c.Env()
		sched := placement.HEFT(env, d)
		opts := core.ReliableOptions{MaxRetries: 1000, RetryBackoff: 0.5}
		if mtbf < 1e8 {
			inj := fault.NewInjector(c.K, workload.NewRNG(31), 1e6)
			opts.Faults = map[int]*fault.Target{}
			for _, n := range env.Nodes {
				opts.Faults[n.ID] = inj.Attach(n.Name, fault.Spec{MeanUp: mtbf, MeanDown: mttr})
			}
		}
		return c.RunDAGReliable(d, sched, env, opts)
	}

	base, err := run(1e9)
	if err != nil {
		panic(fmt.Sprintf("experiments: F10 baseline: %v", err))
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("F10 — workflow under failures (%d tasks, HEFT, task-level retry)", d.N()),
		"mtbf", "makespan", "inflation", "retries", "completed",
	)
	for _, mtbf := range mtbfs {
		st, err := run(mtbf)
		if err != nil {
			panic(fmt.Sprintf("experiments: F10 mtbf=%v: %v", mtbf, err))
		}
		label := fmt.Sprintf("%.0fs", mtbf)
		if mtbf >= 1e8 {
			label = "none"
		}
		tbl.AddRow(
			label,
			metrics.FormatDuration(st.Makespan),
			fmt.Sprintf("%.2fx", st.Makespan/base.Makespan),
			fmt.Sprintf("%d", st.Retries),
			fmt.Sprintf("%d/%d", st.Completed, d.N()),
		)
	}
	return &Result{
		ID:    "F10",
		Title: "Science workflows on a flaky continuum (checkpoint/retry)",
		Table: tbl,
		Notes: "Expected shape: with task-level retry the workflow always completes; makespan inflation is mild while MTBF >> task duration and grows toward (MeanUp+MeanDown)/MeanUp-scaled blowup as MTBF approaches the task scale — the regime where finer-grained checkpointing (or failure-aware scheduling) becomes mandatory.",
	}
}
