package experiments

import (
	"fmt"
	"sync"
	"time"

	"continuum/internal/faas"
	"continuum/internal/metrics"
)

// f3Registry registers the benchmark function: a short spin standing in
// for a real handler (sleep-based handlers understate scheduler effects).
func f3Registry(serviceTime time.Duration) *faas.Registry {
	reg := faas.NewRegistry()
	reg.Register("work", func(p []byte) ([]byte, error) {
		deadline := time.Now().Add(serviceTime)
		for time.Now().Before(deadline) {
		}
		return p, nil
	})
	return reg
}

func f3Endpoints(reg *faas.Registry, cold time.Duration, warmTTL time.Duration) []*faas.Endpoint {
	caps := []int{2, 4, 8, 16}
	eps := make([]*faas.Endpoint, len(caps))
	for i, cp := range caps {
		eps[i] = faas.NewEndpoint(faas.EndpointConfig{
			Name:      fmt.Sprintf("ep%d", i),
			Capacity:  cp,
			ColdStart: cold,
			WarmTTL:   warmTTL,
		}, reg)
	}
	return eps
}

// f3Drive fires `calls` invocations from `conc` concurrent clients through
// inv and returns throughput (calls/sec) and mean latency.
func f3Drive(inv faas.Invoker, conc, calls int) (throughput float64, meanLat time.Duration) {
	var wg sync.WaitGroup
	per := calls / conc
	var latTotal int64
	var mu sync.Mutex
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < per; i++ {
				t0 := time.Now()
				if _, err := inv.Invoke("work", []byte("x")); err != nil {
					panic(fmt.Sprintf("experiments: F3 invoke: %v", err))
				}
				local += int64(time.Since(t0))
			}
			mu.Lock()
			latTotal += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	done := per * conc
	return float64(done) / elapsed.Seconds(), time.Duration(latTotal / int64(done))
}

// F3FaaS measures the federated function-serving layer for real (wall
// clock): cold-start vs warm throughput across offered concurrency, and
// the effect of request batching. This is the funcX-shaped experiment.
func F3FaaS(size Size) *Result {
	serviceTime := 200 * time.Microsecond
	cold := 2 * time.Millisecond
	concs := []int{1, 4, 16, 64}
	callsPerCell := 512
	if size == Small {
		concs = []int{1, 8}
		callsPerCell = 128
	}

	tbl := metrics.NewTable(
		"F3 — federated FaaS: throughput and latency vs offered concurrency",
		"conc", "mode", "calls/s", "mean_lat", "cold_starts", "warm_hits",
	)

	for _, conc := range concs {
		// Cold: TTL 0 expires every container immediately, so every call
		// pays provisioning.
		{
			reg := f3Registry(serviceTime)
			eps := f3Endpoints(reg, cold, time.Nanosecond)
			r := faas.NewRouter(faas.RouteLeastLoaded, eps...)
			tput, lat := f3Drive(r, conc, callsPerCell)
			tbl.AddRow(fmt.Sprintf("%d", conc), "cold",
				fmt.Sprintf("%.0f", tput), lat.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", sumCold(eps)), fmt.Sprintf("%d", sumWarm(eps)))
		}
		// Warm: long TTL; after the first touch containers are reused.
		{
			reg := f3Registry(serviceTime)
			eps := f3Endpoints(reg, cold, time.Minute)
			r := faas.NewRouter(faas.RouteLeastLoaded, eps...)
			tput, lat := f3Drive(r, conc, callsPerCell)
			tbl.AddRow(fmt.Sprintf("%d", conc), "warm",
				fmt.Sprintf("%.0f", tput), lat.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", sumCold(eps)), fmt.Sprintf("%d", sumWarm(eps)))
		}
		// Batched: warm endpoints behind a batcher.
		{
			reg := f3Registry(serviceTime)
			eps := f3Endpoints(reg, cold, time.Minute)
			r := faas.NewRouter(faas.RouteLeastLoaded, eps...)
			b := faas.NewBatcher(r, 16, 500*time.Microsecond)
			tput, lat := f3Drive(b, conc, callsPerCell)
			b.Close()
			tbl.AddRow(fmt.Sprintf("%d", conc), "warm+batch",
				fmt.Sprintf("%.0f", tput), lat.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", sumCold(eps)), fmt.Sprintf("%d", sumWarm(eps)))
		}
	}
	return &Result{
		ID:    "F3",
		Title: "Federated function serving (funcX-shaped, wall clock)",
		Table: tbl,
		Notes: "Expected shape: warm throughput ~10x cold for sub-ms functions (2ms provisioning vs 0.2ms service); batching raises high-concurrency throughput further at some latency cost; cold_starts ~= calls in cold mode and ~= touched containers in warm mode.",
	}
}

func sumCold(eps []*faas.Endpoint) int64 {
	var n int64
	for _, ep := range eps {
		n += ep.ColdStarts()
	}
	return n
}

func sumWarm(eps []*faas.Endpoint) int64 {
	var n int64
	for _, ep := range eps {
		n += ep.WarmHits()
	}
	return n
}
