package experiments

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/placement"
	"continuum/internal/workload"
)

// T4Pareto maps the latency/energy/dollar tradeoff space: single-objective
// policies plus a grid of multi-objective weightings all run the same IoT
// workload; the Pareto front shows that no placement dominates — the
// keynote's "myriad of new answers" made quantitative.
func T4Pareto(size Size) *Result {
	gateways, sensorsPer, horizon, rate := 4, 4, 20.0, 10.0
	if size == Small {
		gateways, sensorsPer, horizon = 2, 2, 5.0
	}

	pols := []placement.Policy{
		placement.EdgeOnly{},
		placement.CloudOnly{},
		placement.GreedyLatency{},
		placement.GreedyEnergy{},
		placement.GreedyCost{},
	}
	for _, w := range []placement.Weights{
		{Latency: 1, Energy: 1},
		{Latency: 1, Dollars: 1},
		{Latency: 1, Energy: 1, Dollars: 1},
		{Latency: 3, Energy: 1},
	} {
		pols = append(pols, placement.MultiObjective{W: w})
	}

	var pts []placement.Point
	type row struct {
		name              string
		lat, joules, cost float64
	}
	var rows []row
	for _, pol := range pols {
		tt := core.BuildThreeTier(core.DefaultThreeTierParams(gateways, sensorsPer))
		jobs := t1Jobs(tt, workload.NewRNG(77), rate, horizon)
		st := tt.RunStream(pol, jobs, tt.ComputeNodes())
		rows = append(rows, row{pol.Name(), st.Latency.Mean(), st.Joules, st.Dollars})
		pts = append(pts, placement.Point{
			Label: pol.Name(), Latency: st.Latency.Mean(),
			Energy: st.Joules, Dollars: st.Dollars,
		})
	}
	front := placement.ParetoFront(pts)
	onFront := make(map[string]bool, len(front))
	for _, p := range front {
		onFront[p.Label] = true
	}

	tbl := metrics.NewTable(
		"T4 — multi-objective placement: the latency/energy/cost surface",
		"policy", "mean_lat", "joules", "dollars", "pareto",
	)
	for _, r := range rows {
		mark := ""
		if onFront[r.name] {
			mark = "*"
		}
		tbl.AddRow(
			r.name,
			metrics.FormatDuration(r.lat),
			fmt.Sprintf("%.0f", r.joules),
			fmt.Sprintf("$%.4f", r.cost),
			mark,
		)
	}
	return &Result{
		ID:    "T4",
		Title: "Concepts for the continuum: Pareto surface of placements",
		Table: tbl,
		Notes: "Expected shape: multiple policies survive on the front (no single winner); edge-lean points anchor the energy extreme, latency-weighted points the latency extreme; cloud-only is dominated once egress is billed.",
	}
}
