package experiments

import (
	"fmt"

	"continuum/internal/autoscale"
	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/workload"
)

// F8Elasticity studies serverless-style elasticity on the continuum: a
// bursty (MMPP) invocation stream against a fleet that can be statically
// small (cheap, slow under burst), statically large (fast, wasteful), or
// autoscaled with a provisioning delay. The provisioning-delay sweep
// shows the price of cold capacity: elasticity approaches the big
// fleet's latency only when provisioning is much faster than burst
// duration.
func F8Elasticity(size Size) *Result {
	provisionDelays := []float64{0.5, 2, 10}
	bursts := 6
	if size == Small {
		provisionDelays = []float64{0.5, 10}
		bursts = 3
	}

	template := node.Spec{
		Name: "worker", Class: node.Cloud,
		Cores: 4, CoreFlops: 2.5e9, MemBytes: 8 << 30,
		IdleWatts: 20, ActiveWattsCore: 8,
	}
	baseCfg := autoscale.Config{
		Min: 1, Max: 10, Template: template,
		LinkLatency: 0.002, LinkCapacity: 1.25e9,
		DrainAfter: 8, QueuePerNode: 2,
	}

	// run executes the bursty workload on one pool config and returns
	// (mean latency, p99, node-seconds, cold provisions).
	run := func(cfg autoscale.Config) (float64, float64, float64, int64) {
		c := core.New()
		hub := c.AddVertex()
		p := autoscale.NewPool(c, hub, cfg)
		rng := workload.NewRNG(13)
		lat := metrics.NewHistogram()
		t0 := 0.0
		for b := 0; b < bursts; b++ {
			// Burst: 60 tasks over ~6 seconds, then quiet. The burst must
			// outlive the provisioning delays being swept: the pool does
			// not migrate queued work, so capacity arriving after the
			// last submission can only watch.
			arr := workload.NewPoisson(rng.Split(), 10)
			at := t0
			for i := 0; i < 60; i++ {
				at += arr.Next()
				submit := at
				c.K.At(submit, func() {
					p.Submit(2.5e9, 0, node.NoAccel, func() {
						lat.Add(c.K.Now() - submit)
					})
				})
			}
			t0 += 60
		}
		c.K.Run()
		return lat.Mean(), lat.P99(), p.NodeSeconds(), p.ColdProvisions
	}

	tbl := metrics.NewTable(
		"F8 — elasticity under bursty load (60-task bursts, 60s apart)",
		"fleet", "mean_lat", "p99_lat", "node_sec", "cold_provisions",
	)

	// Static baselines.
	small := baseCfg
	small.Max = small.Min
	ml, p99, ns, _ := run(small)
	tbl.AddRow("static-1", metrics.FormatDuration(ml), metrics.FormatDuration(p99),
		fmt.Sprintf("%.0f", ns), "0")

	big := baseCfg
	big.Min, big.Max = 10, 10
	ml, p99, ns, _ = run(big)
	tbl.AddRow("static-10", metrics.FormatDuration(ml), metrics.FormatDuration(p99),
		fmt.Sprintf("%.0f", ns), "0")

	for _, pd := range provisionDelays {
		cfg := baseCfg
		cfg.ProvisionDelay = pd
		ml, p99, ns, cold := run(cfg)
		tbl.AddRow(
			fmt.Sprintf("elastic(%.1fs)", pd),
			metrics.FormatDuration(ml), metrics.FormatDuration(p99),
			fmt.Sprintf("%.0f", ns), fmt.Sprintf("%d", cold),
		)
	}
	return &Result{
		ID:    "F8",
		Title: "Serverless elasticity: provisioning delay vs burst latency",
		Table: tbl,
		Notes: "Expected shape: static-1 is cheapest and slowest; static-10 fastest and most expensive; elastic fleets land between, degrading toward static-1 latency as provisioning delay approaches the burst duration (capacity arriving after the last submission is useless — the pool does not migrate queued work), while spending far fewer node-seconds than static-10.",
	}
}
