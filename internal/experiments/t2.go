package experiments

import (
	"fmt"

	"continuum/internal/data"
	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/sim"
	"continuum/internal/workload"
)

// T2DataFabric measures edge caching of scientific datasets: Zipf-skewed
// accesses from an edge site to datasets homed across the WAN, comparing
// eviction policies on hit rate, WAN traffic avoided, and mean staging
// latency — the Globus-flavored experiment.
func T2DataFabric(size Size) *Result {
	alphas := []float64{0.6, 0.9, 1.2}
	policies := []data.Policy{data.NoCache, data.LRU, data.LFU, data.TwoRandom}
	nDatasets, accesses := 200, 3000
	if size == Small {
		alphas = []float64{0.9}
		nDatasets, accesses = 50, 500
	}

	tbl := metrics.NewTable(
		"T2 — edge caching of remote datasets (Zipf popularity)",
		"zipf_a", "policy", "hit_rate", "wan_bytes", "saved_vs_nocache", "mean_stage",
	)

	for _, alpha := range alphas {
		var nocacheWAN float64
		for _, pol := range policies {
			hitRate, wan, meanStage := t2Run(alpha, pol, nDatasets, accesses)
			if pol == data.NoCache {
				nocacheWAN = wan
			}
			saved := 1 - wan/nocacheWAN
			tbl.AddRow(
				fmt.Sprintf("%.1f", alpha),
				pol.String(),
				fmt.Sprintf("%.1f%%", hitRate*100),
				metrics.FormatBytes(wan),
				fmt.Sprintf("%.1f%%", saved*100),
				metrics.FormatDuration(meanStage),
			)
		}
	}
	return &Result{
		ID:    "T2",
		Title: "Data fabric: edge caching vs Zipf skew",
		Table: tbl,
		Notes: "Expected shape: hit rate rises with alpha for every caching policy; LFU >= LRU under stable Zipf popularity; WAN savings track hit rate; 2-random lands near LRU.",
	}
}

// t2Run executes one (alpha, policy) cell and returns hit rate, WAN bytes,
// and mean staging latency.
func t2Run(alpha float64, pol data.Policy, nDatasets, accesses int) (hitRate, wanBytes, meanStage float64) {
	k := sim.NewKernel()
	// Edge store (0) -- metro (1) -- WAN home (2).
	net := netsim.New(k, 3)
	net.AddDuplexLink(0, 1, 0.002, 1.25e8)
	net.AddDuplexLink(1, 2, 0.030, 1.25e8)

	rng := workload.NewRNG(uint64(nDatasets) * 31)
	fab := data.NewFabric(net, rng.Split())

	// Datasets: lognormal sizes around 20 MB; cache holds ~10% of the
	// total corpus.
	sizes := workload.NewLognormalSize(rng.Split(), 16.8, 0.7) // ~exp(16.8)≈20MB median
	sets := make([]data.Dataset, nDatasets)
	total := 0.0
	for i := range sets {
		sets[i] = data.Dataset{Name: fmt.Sprintf("ds%04d", i), Bytes: sizes.Next()}
		total += sets[i].Bytes
	}
	edge := fab.AddStore(0, total/10, pol)
	fab.AddStore(2, 0, data.NoCache)
	for _, ds := range sets {
		fab.Pin(ds, 2)
	}

	z := workload.NewZipf(rng.Split(), nDatasets, alpha)
	arr := workload.NewPoisson(rng.Split(), 20)

	var stageSum float64
	var stages int64
	t := 0.0
	for i := 0; i < accesses; i++ {
		t += arr.Next()
		ds := sets[z.Next()]
		at := t
		k.At(at, func() {
			fab.Stage(ds, 0, func(bool) {
				stageSum += k.Now() - at
				stages++
			})
		})
	}
	k.Run()

	// WAN bytes: traffic that crossed the metro->edge link toward the
	// store (all staged misses).
	return edge.HitRate(), fab.BytesMoved, stageSum / float64(stages)
}
