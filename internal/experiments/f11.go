package experiments

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// f11Jobs generates a heavy-tailed task bag: Poisson arrivals per sensor
// whose work follows a lognormal — most tasks are mice around the T1
// analytics size, a few are whales several times larger. The whales
// create queueing noise; the degraded node (see F11Speculation) creates
// the stragglers speculation is aimed at.
func f11Jobs(tt *core.ThreeTier, rng *workload.RNG, ratePerSensor, horizon, sigma float64) []core.StreamJob {
	var jobs []core.StreamJob
	for g := range tt.Sensors {
		for _, s := range tt.Sensors[g] {
			arr := workload.NewPoisson(rng.Split(), ratePerSensor)
			sizes := rng.Split()
			t := 0.0
			for {
				t += arr.Next()
				if t > horizon {
					break
				}
				// Median e^mu ≈ 1, so the typical task matches T1's 5e8
				// flops; sigma stretches the upper tail only.
				work := 5e8 * sizes.Lognormal(0, sigma)
				jobs = append(jobs, core.StreamJob{
					Task: &task.Task{
						Name:        "analyze",
						ScalarWork:  work,
						OutputBytes: 128,
						Inputs:      []task.DataRef{{Name: "reading", Bytes: 1024}},
					},
					Origin: s.ID,
					Submit: t,
				})
			}
		}
	}
	return jobs
}

// F11Speculation measures hedged (speculative) execution against
// stragglers. The classic straggler is environmental, not intrinsic: a
// task is slow because of where it landed, not what it is. So one
// gateway is silently degraded (its cores run at 1/slow speed — thermal
// throttling, a noisy neighbor, failing hardware) while placement stays
// round-robin and queue-blind, sending it a full share of a heavy-tailed
// task bag. Every sixth task becomes a straggler that a backup replica
// on a healthy node can beat.
//
// With speculation on, an attempt still unfinished past the observed p80
// latency (or 2x its expected runtime before enough samples exist) gets
// a backup on the next candidate node; first finisher wins, the loser is
// preempted. Wasted work prices the bet: every preempted replica burned
// node time for a discarded result.
func F11Speculation(size Size) *Result {
	slowdowns := []float64{1, 4, 10}
	rate := 1.2
	horizon := 30.0
	gateways, sensorsPer := 4, 4
	if size == Small {
		slowdowns = []float64{10}
		horizon = 8.0
		gateways, sensorsPer = 2, 2
	}
	const sigma = 0.8 // lognormal work tail: p99 task ~6x the median

	tbl := metrics.NewTable(
		"F11 — speculative execution vs stragglers (one degraded gateway, round-robin placement)",
		"slowdown", "speculate", "p50_lat", "p99_lat", "completed", "backups", "wins", "wasted",
	)

	for _, slow := range slowdowns {
		for _, spec := range []bool{false, true} {
			tt := core.BuildThreeTier(core.DefaultThreeTierParams(gateways, sensorsPer))
			// The degraded node: placement does not know (round-robin
			// never looks), the speculation policy does not know — only
			// the observed latency distribution betrays it.
			tt.Gateways[0].CoreFlops /= slow
			jobs := f11Jobs(tt, workload.NewRNG(7), rate, horizon, sigma)
			opts := core.ReliableOptions{MaxRetries: 2}
			if spec {
				opts.Speculate = core.SpeculateOptions{
					Quantile:   0.80,
					Multiple:   2,
					MinSamples: 50,
				}
			}
			st := tt.RunStreamReliable(&placement.RoundRobin{}, jobs, tt.ComputeNodes(), opts)

			wasted := 0.0
			if st.Completed+st.PreemptedTasks > 0 {
				wasted = float64(st.PreemptedTasks) / float64(st.Completed+st.PreemptedTasks)
			}
			tbl.AddRow(
				fmt.Sprintf("%.0fx", slow),
				fmt.Sprintf("%v", spec),
				metrics.FormatDuration(st.Latency.P50()),
				metrics.FormatDuration(st.Latency.P99()),
				fmt.Sprintf("%d", st.Completed),
				fmt.Sprintf("%d", st.SpeculativeLaunches),
				fmt.Sprintf("%d", st.SpeculativeWins),
				fmt.Sprintf("%.1f%%", wasted*100),
			)
		}
	}
	return &Result{
		ID:    "F11",
		Title: "Hedging the tail (speculative execution vs stragglers)",
		Table: tbl,
		Notes: "Expected shape: without degradation speculation is near-neutral (waste but no p99 change — hedging's insurance premium). As the degraded gateway slows, baseline p99 tracks the slow node's execution time while the speculative run caps it an order of magnitude lower — backups on healthy nodes beat the stragglers — at a wasted-work cost around 15%. p50 stays untouched in every row: speculation never fires on the median.",
	}
}
