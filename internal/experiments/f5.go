package experiments

import (
	"fmt"
	"time"

	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/sim"
	"continuum/internal/workload"
)

// F5SimScaling validates the substrate itself: discrete-event throughput
// (events/sec of wall clock) as the simulated continuum grows from 10 to
// 10,000 nodes. The repro band called for "multi-node sim"; this is the
// evidence it scales on one laptop core.
func F5SimScaling(size Size) *Result {
	nodeCounts := []int{10, 100, 1000, 10000}
	msgsPerNode := 20
	if size == Small {
		nodeCounts = []int{10, 100, 1000}
		msgsPerNode = 10
	}

	tbl := metrics.NewTable(
		"F5 — simulator scaling: event throughput vs continuum size",
		"nodes", "messages", "cold_wall", "cold_ev/s", "warm_wall", "warm_ev/s",
	)

	for _, nn := range nodeCounts {
		k := sim.NewKernel()
		net, _, leaves := netsim.Star(k, netsim.StarSpec{
			Leaves: nn, LeafLatency: 0.001, LeafCapacity: 1e9,
		})
		rng := workload.NewRNG(uint64(nn))
		total := nn * msgsPerNode

		// Cold phase: first contact from every source builds its routing
		// table (one Dijkstra + O(V) state per source), so this round
		// includes routing construction.
		round := func() (time.Duration, uint64) {
			delivered := 0
			for i := 0; i < total; i++ {
				src := leaves[rng.Intn(len(leaves))]
				dst := leaves[rng.Intn(len(leaves))]
				at := k.Now() + rng.Float64()*10
				k.At(at, func() {
					net.Message(src, dst, 1e3, func() { delivered++ })
				})
			}
			before := k.Fired()
			start := time.Now()
			k.Run()
			wall := time.Since(start)
			if delivered != total {
				panic(fmt.Sprintf("experiments: F5 delivered %d of %d", delivered, total))
			}
			return wall, k.Fired() - before
		}
		coldWall, coldEvents := round()
		warmWall, warmEvents := round() // routing tables now cached

		tbl.AddRow(
			fmt.Sprintf("%d", nn),
			fmt.Sprintf("%d", total),
			coldWall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(coldEvents)/coldWall.Seconds()),
			warmWall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(warmEvents)/warmWall.Seconds()),
		)
	}
	return &Result{
		ID:    "F5",
		Title: "Substrate scaling (events/sec vs node count)",
		Table: tbl,
		Notes: "Expected shape: warm events/sec roughly flat in node count (heap log factor only); the cold column degrades at 10k nodes because per-source routing tables are O(V) each — the practical single-process ceiling, paid once.",
	}
}
