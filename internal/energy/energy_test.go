package energy

import (
	"math"
	"testing"
	"testing/quick"

	"continuum/internal/sim"
)

func TestMeterIdleIntegration(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k, 10)
	k.RunUntil(5)
	if j := m.Joules(); math.Abs(j-50) > 1e-9 {
		t.Fatalf("Joules = %v, want 50", j)
	}
}

func TestMeterLoadSteps(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k, 1)
	k.At(10, func() { m.AddLoad(9) })    // 10W from t=10
	k.At(20, func() { m.RemoveLoad(9) }) // 1W from t=20
	k.RunUntil(30)
	// 1*10 + 10*10 + 1*10 = 120 J
	if j := m.Joules(); math.Abs(j-120) > 1e-9 {
		t.Fatalf("Joules = %v, want 120", j)
	}
	if m.Watts() != 1 {
		t.Fatalf("Watts = %v, want 1", m.Watts())
	}
}

func TestMeterZeroTime(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k, 100)
	if m.Joules() != 0 {
		t.Fatalf("Joules at t=0 = %v", m.Joules())
	}
}

func TestMeterJoulesIdempotent(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k, 7)
	k.RunUntil(3)
	a := m.Joules()
	b := m.Joules()
	if a != b {
		t.Fatalf("repeated Joules() differ: %v vs %v", a, b)
	}
}

func TestMeterPanics(t *testing.T) {
	k := sim.NewKernel()
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative base", func() { NewMeter(k, -1) }},
		{"negative add", func() { NewMeter(k, 0).AddLoad(-1) }},
		{"negative remove", func() { NewMeter(k, 0).RemoveLoad(-1) }},
		{"remove below zero", func() { NewMeter(k, 0).RemoveLoad(5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// Property: energy is nondecreasing in time and equals watts*dt for
// constant load.
func TestPropertyMeterMonotone(t *testing.T) {
	f := func(steps []uint8) bool {
		k := sim.NewKernel()
		m := NewMeter(k, 5)
		prev := 0.0
		tnow := 0.0
		for _, s := range steps {
			tnow += float64(s%10) + 0.1
			k.RunUntil(tnow)
			j := m.Joules()
			if j < prev-1e-9 {
				return false
			}
			prev = j
		}
		return math.Abs(prev-5*tnow) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
