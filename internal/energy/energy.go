// Package energy integrates power draw over virtual time. A Meter carries
// a base (idle) load plus dynamically added loads (busy cores, active
// accelerators, radios) and reports total joules consumed, enabling the
// energy columns of the placement experiments.
package energy

import (
	"fmt"

	"continuum/internal/sim"
)

// Meter integrates watts over virtual seconds into joules.
type Meter struct {
	k          *sim.Kernel
	watts      float64 // current total draw
	joules     float64 // integrated up to lastChange
	lastChange float64
}

// NewMeter returns a meter drawing baseWatts from virtual time 0.
func NewMeter(k *sim.Kernel, baseWatts float64) *Meter {
	if baseWatts < 0 {
		panic(fmt.Sprintf("energy: negative base watts %v", baseWatts))
	}
	return &Meter{k: k, watts: baseWatts}
}

func (m *Meter) integrate() {
	now := m.k.Now()
	m.joules += m.watts * (now - m.lastChange)
	m.lastChange = now
}

// AddLoad increases the current draw by watts.
func (m *Meter) AddLoad(watts float64) {
	if watts < 0 {
		panic(fmt.Sprintf("energy: AddLoad(%v) < 0; use RemoveLoad", watts))
	}
	m.integrate()
	m.watts += watts
}

// RemoveLoad decreases the current draw by watts. Removing more than is
// present panics: it indicates unbalanced add/remove pairs.
func (m *Meter) RemoveLoad(watts float64) {
	if watts < 0 {
		panic(fmt.Sprintf("energy: RemoveLoad(%v) < 0", watts))
	}
	m.integrate()
	if m.watts-watts < -1e-9 {
		panic(fmt.Sprintf("energy: RemoveLoad(%v) below zero (current %v)", watts, m.watts))
	}
	m.watts -= watts
	if m.watts < 0 {
		m.watts = 0
	}
}

// Watts returns the instantaneous draw.
func (m *Meter) Watts() float64 { return m.watts }

// Joules returns energy consumed up to the current virtual time.
func (m *Meter) Joules() float64 {
	m.integrate()
	return m.joules
}
