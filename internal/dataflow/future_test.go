package dataflow

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitBasic(t *testing.T) {
	e := NewExecutor(4)
	defer e.Close()
	f := Submit(e, func() (int, error) { return 42, nil })
	v, err := f.Get()
	if err != nil || v != 42 {
		t.Fatalf("Get = %v, %v", v, err)
	}
}

func TestSubmitError(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	boom := errors.New("boom")
	f := Submit(e, func() (int, error) { return 0, boom })
	if _, err := f.Get(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestDependencyOrdering(t *testing.T) {
	e := NewExecutor(8)
	defer e.Close()
	var order []string
	var mu sync.Mutex
	log := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	a := Submit(e, func() (int, error) {
		time.Sleep(10 * time.Millisecond)
		log("a")
		return 1, nil
	})
	b := Submit(e, func() (int, error) {
		log("b")
		av, _ := a.Get()
		return av + 1, nil
	}, a)
	if v := b.MustGet(); v != 2 {
		t.Fatalf("b = %d", v)
	}
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	boom := errors.New("boom")
	a := Submit(e, func() (int, error) { return 0, boom })
	ran := false
	b := Submit(e, func() (int, error) { ran = true; return 1, nil }, a)
	_, err := b.Get()
	var de *DependencyError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DependencyError", err)
	}
	if !errors.Is(err, boom) {
		t.Fatal("DependencyError does not unwrap to cause")
	}
	if ran {
		t.Fatal("dependent ran despite failed dependency")
	}
}

func TestPanicBecomesError(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	f := Submit(e, func() (int, error) { panic("kaboom") })
	if _, err := f.Get(); err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestWorkerLimitRespected(t *testing.T) {
	const workers = 3
	e := NewExecutor(workers)
	defer e.Close()
	var active, peak int64
	var fs []*Future[int]
	for i := 0; i < 20; i++ {
		fs = append(fs, Submit(e, func() (int, error) {
			cur := atomic.AddInt64(&active, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&active, -1)
			return 0, nil
		}))
	}
	if _, err := Gather(fs); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > workers {
		t.Fatalf("peak concurrency %d > limit %d", p, workers)
	}
}

func TestSubmitRetrySucceedsEventually(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	attempts := 0
	f := SubmitRetry(e, 3, func() (string, error) {
		attempts++
		if attempts < 3 {
			return "", errors.New("flaky")
		}
		return "ok", nil
	})
	v, err := f.Get()
	if err != nil || v != "ok" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d", attempts)
	}
}

func TestSubmitRetryExhausts(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	f := SubmitRetry(e, 2, func() (int, error) { return 0, errors.New("always") })
	if _, err := f.Get(); err == nil {
		t.Fatal("exhausted retry returned nil error")
	}
}

func TestThenAndCombine(t *testing.T) {
	e := NewExecutor(4)
	defer e.Close()
	a := Submit(e, func() (int, error) { return 3, nil })
	sq := Then(e, a, func(x int) (int, error) { return x * x, nil })
	b := Submit(e, func() (int, error) { return 4, nil })
	sum := Combine(e, sq, b, func(x, y int) (int, error) { return x + y, nil })
	if v := sum.MustGet(); v != 13 {
		t.Fatalf("sum = %d, want 13", v)
	}
}

func TestThenPropagatesError(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	a := Failed[int](errors.New("nope"))
	b := Then(e, a, func(x int) (int, error) { return x, nil })
	if _, err := b.Get(); err == nil {
		t.Fatal("Then swallowed upstream error")
	}
}

func TestMapGatherReduce(t *testing.T) {
	e := NewExecutor(8)
	defer e.Close()
	in := []int{1, 2, 3, 4, 5}
	fs := Map(e, in, func(x int) (int, error) { return x * 2, nil })
	vals, err := Gather(fs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 6, 8, 10}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v", vals)
		}
	}
	total, err := Reduce(fs, 0, func(a, x int) int { return a + x })
	if err != nil || total != 30 {
		t.Fatalf("Reduce = %d, %v", total, err)
	}
}

func TestGatherReportsFirstError(t *testing.T) {
	e := NewExecutor(4)
	defer e.Close()
	fs := Map(e, []int{1, 2, 3}, func(x int) (int, error) {
		if x == 2 {
			return 0, fmt.Errorf("bad %d", x)
		}
		return x, nil
	})
	if _, err := Gather(fs); err == nil {
		t.Fatal("Gather did not surface error")
	}
}

func TestResolvedAndFailed(t *testing.T) {
	r := Resolved(7)
	if v := r.MustGet(); v != 7 {
		t.Fatal("Resolved wrong")
	}
	f := Failed[int](errors.New("x"))
	if _, err := f.Get(); err == nil {
		t.Fatal("Failed wrong")
	}
}

func TestDoubleResolvePanics(t *testing.T) {
	f := NewFuture[int]()
	f.Resolve(1, nil)
	defer func() {
		if recover() == nil {
			t.Error("double resolve did not panic")
		}
	}()
	f.Resolve(2, nil)
}

func TestCloseRejectsNewWork(t *testing.T) {
	e := NewExecutor(1)
	e.Close()
	f := Submit(e, func() (int, error) { return 1, nil })
	if _, err := f.Get(); !errors.Is(err, ErrExecutorClosed) {
		t.Fatalf("err = %v, want ErrExecutorClosed", err)
	}
}

func TestCloseWaitsForInflight(t *testing.T) {
	e := NewExecutor(2)
	var finished atomic.Bool
	Submit(e, func() (int, error) {
		time.Sleep(20 * time.Millisecond)
		finished.Store(true)
		return 0, nil
	})
	e.Close()
	if !finished.Load() {
		t.Fatal("Close returned before in-flight task finished")
	}
}

func TestStatsCounters(t *testing.T) {
	e := NewExecutor(4)
	fs := Map(e, []int{1, 2, 3}, func(x int) (int, error) { return x, nil })
	if _, err := Gather(fs); err != nil {
		t.Fatal(err)
	}
	e.Wait()
	if e.Launched() != 3 || e.Completed() != 3 {
		t.Fatalf("launched/completed = %d/%d", e.Launched(), e.Completed())
	}
	e.Close()
}

func TestDiamondDataflow(t *testing.T) {
	// Classic diamond: a -> (b, c) -> d, values flow through futures.
	e := NewExecutor(4)
	defer e.Close()
	a := Submit(e, func() (int, error) { return 10, nil })
	b := Then(e, a, func(x int) (int, error) { return x + 1, nil })
	c := Then(e, a, func(x int) (int, error) { return x * 2, nil })
	d := Combine(e, b, c, func(x, y int) (int, error) { return x + y, nil })
	if v := d.MustGet(); v != 31 {
		t.Fatalf("diamond = %d, want 31", v)
	}
}

func TestManyTasksStress(t *testing.T) {
	e := NewExecutor(16)
	defer e.Close()
	const n = 2000
	var sum int64
	fs := make([]*Future[int], n)
	for i := 0; i < n; i++ {
		i := i
		fs[i] = Submit(e, func() (int, error) {
			atomic.AddInt64(&sum, int64(i))
			return i, nil
		})
	}
	if _, err := Gather(fs); err != nil {
		t.Fatal(err)
	}
	want := int64(n * (n - 1) / 2)
	if atomic.LoadInt64(&sum) != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}
