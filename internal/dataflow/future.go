// Package dataflow is the Parsl analogue of the reproduction: a
// futures-based parallel scripting engine. Functions ("apps") are
// submitted with explicit data dependencies; the engine runs them on a
// bounded worker pool as soon as their inputs resolve, so program order
// and execution order decouple exactly as in Parsl's implicit-dataflow
// model.
//
// Unlike the simulation packages, dataflow executes real Go functions on
// real goroutines — it is the programming-model layer an application links
// against, and the examples drive it directly.
package dataflow

import (
	"errors"
	"fmt"
	"sync"
)

// Awaitable is anything a task can depend on: it signals completion and
// reports a terminal error. All Future[T] instantiations implement it.
type Awaitable interface {
	// Done is closed when the value (or error) is available.
	Done() <-chan struct{}
	// Err returns the terminal error; it must only be called after Done is
	// closed.
	Err() error
}

// Future is a write-once result container.
type Future[T any] struct {
	done  chan struct{}
	value T
	err   error
}

// NewFuture returns an unresolved future, for use by custom producers.
func NewFuture[T any]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// Resolve fulfills the future. Resolving twice panics (write-once).
func (f *Future[T]) Resolve(v T, err error) {
	select {
	case <-f.done:
		panic("dataflow: future resolved twice")
	default:
	}
	f.value = v
	f.err = err
	close(f.done)
}

// Done returns a channel closed at resolution.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Err returns the terminal error. Call only after Done is closed.
func (f *Future[T]) Err() error { return f.err }

// Get blocks until the future resolves and returns its value and error.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	return f.value, f.err
}

// MustGet is Get for tests and examples where failure is fatal.
func (f *Future[T]) MustGet() T {
	v, err := f.Get()
	if err != nil {
		panic(err)
	}
	return v
}

// Resolved returns an already-fulfilled future carrying v.
func Resolved[T any](v T) *Future[T] {
	f := NewFuture[T]()
	f.Resolve(v, nil)
	return f
}

// Failed returns an already-failed future.
func Failed[T any](err error) *Future[T] {
	f := NewFuture[T]()
	var zero T
	f.Resolve(zero, err)
	return f
}

// DependencyError wraps the upstream failure that prevented a task from
// running.
type DependencyError struct {
	Cause error
}

// Error implements error.
func (e *DependencyError) Error() string {
	return fmt.Sprintf("dataflow: dependency failed: %v", e.Cause)
}

// Unwrap exposes the upstream error to errors.Is/As.
func (e *DependencyError) Unwrap() error { return e.Cause }

// ErrExecutorClosed is returned by submissions after Close.
var ErrExecutorClosed = errors.New("dataflow: executor closed")

// Executor runs submitted apps on at most `workers` concurrent goroutines.
type Executor struct {
	sem    chan struct{}
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool

	// Launched and Completed count tasks for introspection.
	statsMu   sync.Mutex
	launched  int64
	completed int64
}

// NewExecutor returns an executor with the given worker-pool size.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		panic("dataflow: workers must be positive")
	}
	return &Executor{sem: make(chan struct{}, workers)}
}

// Launched returns the number of tasks accepted so far.
func (e *Executor) Launched() int64 {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.launched
}

// Completed returns the number of tasks finished so far.
func (e *Executor) Completed() int64 {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.completed
}

// Close waits for all in-flight tasks and rejects new submissions.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.wg.Wait()
}

// Wait blocks until all tasks submitted so far have completed, without
// closing the executor.
func (e *Executor) Wait() { e.wg.Wait() }

func (e *Executor) acceptTask() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.wg.Add(1)
	e.statsMu.Lock()
	e.launched++
	e.statsMu.Unlock()
	return true
}

// Submit schedules fn to run once every dep resolves. If any dependency
// fails, fn never runs and the future carries a DependencyError. The
// returned future resolves with fn's result.
func Submit[T any](e *Executor, fn func() (T, error), deps ...Awaitable) *Future[T] {
	f := NewFuture[T]()
	if !e.acceptTask() {
		var zero T
		f.Resolve(zero, ErrExecutorClosed)
		return f
	}
	go func() {
		defer e.wg.Done()
		defer func() {
			e.statsMu.Lock()
			e.completed++
			e.statsMu.Unlock()
		}()
		for _, d := range deps {
			<-d.Done()
			if err := d.Err(); err != nil {
				var zero T
				f.Resolve(zero, &DependencyError{Cause: err})
				return
			}
		}
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		// Convert panics into errors so one bad app doesn't kill the run.
		var v T
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("dataflow: app panicked: %v", r)
				}
			}()
			v, err = fn()
		}()
		f.Resolve(v, err)
	}()
	return f
}

// SubmitRetry is Submit with up to retries re-executions on error
// (dependency failures are not retried — the input will not improve).
func SubmitRetry[T any](e *Executor, retries int, fn func() (T, error), deps ...Awaitable) *Future[T] {
	return Submit(e, func() (T, error) {
		var v T
		var err error
		for attempt := 0; attempt <= retries; attempt++ {
			v, err = fn()
			if err == nil {
				return v, nil
			}
		}
		return v, fmt.Errorf("dataflow: failed after %d attempts: %w", retries+1, err)
	}, deps...)
}

// Then chains: run fn on a's value once a resolves.
func Then[A, B any](e *Executor, a *Future[A], fn func(A) (B, error)) *Future[B] {
	return Submit(e, func() (B, error) {
		av, err := a.Get()
		if err != nil {
			var zero B
			return zero, err
		}
		return fn(av)
	}, a)
}

// Combine joins two futures into one result.
func Combine[A, B, C any](e *Executor, a *Future[A], b *Future[B], fn func(A, B) (C, error)) *Future[C] {
	return Submit(e, func() (C, error) {
		av, _ := a.Get() // deps guarantee success
		bv, _ := b.Get()
		return fn(av, bv)
	}, a, b)
}

// Map fans fn over inputs, returning one future per element.
func Map[A, B any](e *Executor, in []A, fn func(A) (B, error)) []*Future[B] {
	out := make([]*Future[B], len(in))
	for i, a := range in {
		a := a
		out[i] = Submit(e, func() (B, error) { return fn(a) })
	}
	return out
}

// Gather blocks for all futures and collects values; the first error wins
// (but all futures are drained so no goroutine leaks).
func Gather[T any](fs []*Future[T]) ([]T, error) {
	out := make([]T, len(fs))
	var firstErr error
	for i, f := range fs {
		v, err := f.Get()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out[i] = v
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Reduce folds resolved futures left-to-right.
func Reduce[T, Acc any](fs []*Future[T], init Acc, fn func(Acc, T) Acc) (Acc, error) {
	acc := init
	for _, f := range fs {
		v, err := f.Get()
		if err != nil {
			return acc, err
		}
		acc = fn(acc, v)
	}
	return acc, nil
}
