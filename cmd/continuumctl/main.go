// Command continuumctl drives continuumd endpoints over the wire
// protocol.
//
// Usage:
//
//	continuumctl -addr 127.0.0.1:9090 ping
//	continuumctl -addr 127.0.0.1:9090 list
//	continuumctl -addr 127.0.0.1:9090 stats
//	continuumctl -addr 127.0.0.1:9090 invoke echo 'hello'
//	continuumctl -addr 127.0.0.1:9090 invoke matmul '{"n":64}'
//	continuumctl -addr 127.0.0.1:9090 bench echo -n 1000 -c 8
//	continuumctl -addr 127.0.0.1:9090 top -i 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"continuum/internal/metrics"
	"continuum/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "endpoint address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := wire.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch args[0] {
	case "ping":
		start := time.Now()
		if err := c.Ping(); err != nil {
			fatal(err)
		}
		fmt.Printf("pong in %v\n", time.Since(start).Round(time.Microsecond))

	case "list":
		names, err := c.List()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}

	case "stats":
		stats, err := c.Stats()
		if err != nil {
			fatal(err)
		}
		for _, s := range stats {
			fmt.Printf("%s: capacity=%d running=%d invocations=%d cold=%d warm=%d\n",
				s.Name, s.Capacity, s.Running, s.Invocations, s.ColdStarts, s.WarmHits)
		}

	case "invoke":
		if len(args) < 2 {
			usage()
		}
		payload := ""
		if len(args) >= 3 {
			payload = args[2]
		}
		out, err := c.Invoke(args[1], []byte(payload))
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))

	case "top":
		topFlags := flag.NewFlagSet("top", flag.ExitOnError)
		interval := topFlags.Duration("i", 2*time.Second, "refresh interval")
		iters := topFlags.Int("n", 0, "number of refreshes (0 = forever)")
		if err := topFlags.Parse(args[1:]); err != nil {
			fatal(err)
		}
		runTop(c, *interval, *iters)

	case "bench":
		if len(args) < 2 {
			usage()
		}
		benchFlags := flag.NewFlagSet("bench", flag.ExitOnError)
		n := benchFlags.Int("n", 1000, "total invocations")
		conc := benchFlags.Int("c", 8, "concurrent connections")
		payload := benchFlags.String("p", "", "payload")
		if err := benchFlags.Parse(args[2:]); err != nil {
			fatal(err)
		}
		runBench(*addr, args[1], []byte(*payload), *n, *conc)

	default:
		usage()
	}
}

// runTop polls the server's live per-function metrics and renders them as
// a table, refreshing until interrupted (or iters refreshes with -n).
func runTop(c *wire.Client, interval time.Duration, iters int) {
	for i := 0; iters == 0 || i < iters; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		rows, err := c.Top()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s  (%d functions)\n", time.Now().Format("15:04:05"), len(rows))
		fmt.Printf("%-20s %-12s %8s %10s %10s %10s %6s %6s\n",
			"ENDPOINT", "FUNCTION", "CALLS", "P50", "P90", "P99", "COLD", "WARM")
		for _, r := range rows {
			fmt.Printf("%-20s %-12s %8d %10s %10s %10s %6d %6d\n",
				r.Endpoint, r.Fn, r.Count,
				metrics.FormatDuration(r.P50),
				metrics.FormatDuration(r.P90),
				metrics.FormatDuration(r.P99),
				r.ColdStarts, r.WarmHits)
		}
		fmt.Println()
	}
}

// runBench opens conc connections and fires n invocations, printing
// throughput and latency percentiles.
func runBench(addr, fn string, payload []byte, n, conc int) {
	per := n / conc
	lats := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conc; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench dial:", err)
				return
			}
			defer c.Close()
			for j := 0; j < per; j++ {
				t0 := time.Now()
				if _, err := c.Invoke(fn, payload); err != nil {
					fmt.Fprintln(os.Stderr, "bench invoke:", err)
					return
				}
				lats[i] = append(lats[i], time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		fatal(fmt.Errorf("no successful invocations"))
	}
	sortDurations(all)
	fmt.Printf("%d calls in %v: %.0f calls/s\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n",
		all[len(all)/2].Round(time.Microsecond),
		all[len(all)*9/10].Round(time.Microsecond),
		all[len(all)*99/100].Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond))
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

func usage() {
	fmt.Fprintln(os.Stderr, `continuumctl [-addr host:port] <command>

commands:
  ping                      round-trip check
  list                      registered functions
  stats                     endpoint counters
  invoke <fn> [payload]     call a function
  top [-i interval] [-n refreshes]        live per-function latency table
  bench <fn> [-n N] [-c C] [-p payload]   load test`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "continuumctl:", err)
	os.Exit(1)
}
