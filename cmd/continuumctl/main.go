// Command continuumctl drives continuumd endpoints over the wire
// protocol.
//
// Usage:
//
//	continuumctl -addr 127.0.0.1:9090 ping
//	continuumctl -addr 127.0.0.1:9090 list
//	continuumctl -addr 127.0.0.1:9080 endpoints
//	continuumctl -addr 127.0.0.1:9090 stats
//	continuumctl -addr 127.0.0.1:9090 invoke echo 'hello'
//	continuumctl -addr 127.0.0.1:9090 invoke matmul '{"n":64}'
//	continuumctl -addr 127.0.0.1:9090 bench echo -n 1000 -c 8
//	continuumctl -addr 127.0.0.1:9090 bench echo -n 1000 -c 64 -mux
//	continuumctl -addr 127.0.0.1:9090 top -i 2s
//
// -addr accepts a comma-separated federation; invoke, ping, and bench
// then go through a reliable client (retry with backoff, failover, and
// per-endpoint circuit breakers) and print a breaker summary. -timeout
// bounds every round trip so a dead endpoint fails fast.
//
//	continuumctl -addr 127.0.0.1:9090,127.0.0.1:9092 -timeout 2s bench echo -n 1000
//
// -hedge enables hedged requests against a federation: a call still in
// flight after the hedge delay is re-issued at a second endpoint and the
// first response wins. "-hedge auto" derives the delay from the client's
// own observed p99; "-hedge 5ms" fixes it. A hedge summary (arms
// launched, races won) prints after federation commands.
//
//	continuumctl -addr 127.0.0.1:9090,127.0.0.1:9092 -hedge auto bench sleep -p '{"ms":2}' -n 2000
//
// -priority stamps invoke and bench requests with an admission class
// (low | normal | high). Against daemons running -max-queue, low
// priority traffic sheds first under overload while high is served
// longest; daemons without admission control ignore the class.
//
//	continuumctl -addr 127.0.0.1:9090 -priority high invoke echo 'hello'
//	continuumctl -addr 127.0.0.1:9090 -priority low bench sleep -p '{"ms":2}' -n 2000 -c 64
//
// -trace-out FILE runs invoke traced: the client's own spans (root
// invocation, retry attempts, hedge arms, per-call sends) are written to
// FILE and the trace ID is printed. `continuumctl trace <id>` then pulls
// every -addr endpoint's span store, merges in FILE (via -local), and
// renders the assembled cross-daemon tree — or exports it as a Chrome
// trace-event file with -chrome, loadable in the same viewer as
// simulator traces.
//
//	continuumctl -addr 127.0.0.1:9090,127.0.0.1:9092 -hedge 1ms -trace-out /tmp/ctl.spans invoke sleep '{"ms":5}'
//	continuumctl -addr 127.0.0.1:9090,127.0.0.1:9092 trace -local /tmp/ctl.spans <id>
//	continuumctl -addr 127.0.0.1:9090,127.0.0.1:9092 trace -slowest 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"continuum/internal/faas"
	"continuum/internal/metrics"
	"continuum/internal/trace"
	"continuum/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "endpoint address, or comma-separated list for retry+failover")
	timeout := flag.Duration("timeout", 0, "per-call deadline (0 = none)")
	hedgeSpec := flag.String("hedge", "", "hedge in-flight calls at a second endpoint: 'auto' (p99-derived delay) or a fixed duration like '5ms' (empty = off; needs >= 2 addresses)")
	traceOut := flag.String("trace-out", "", "trace invoke calls, writing the client-side spans to this file and printing the trace ID (empty = untraced)")
	priority := flag.String("priority", "", "admission priority for invoke/bench requests: low, normal, or high (empty = normal; only matters against daemons running -max-queue)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	addrs := splitAddrs(*addr)
	hedge, err := parseHedge(*hedgeSpec)
	if err != nil {
		fatal(err)
	}
	// baseCtx carries the request priority across the wire; daemons
	// without admission control ignore it.
	baseCtx := context.Background()
	switch *priority {
	case "", "normal":
	case "low":
		baseCtx = faas.WithPriority(baseCtx, faas.PriorityLow)
	case "high":
		baseCtx = faas.WithPriority(baseCtx, faas.PriorityHigh)
	default:
		fatal(fmt.Errorf("-priority %q: want low, normal, or high", *priority))
	}
	var ctlSpans *trace.SpanStore
	if *traceOut != "" {
		ctlSpans = trace.NewSpanStore(0)
	}

	// Federation commands (ping, invoke, bench) use the reliable client
	// when several addresses are given — retry, failover, breakers. The
	// admin commands (list, stats, top) always talk to the first address.
	var rc *wire.ReliableClient
	if len(addrs) > 1 {
		var err error
		rc, err = wire.NewReliableClient(wire.ReliableConfig{
			Addrs:       addrs,
			CallTimeout: *timeout,
			Hedge:       hedge,
			Spans:       ctlSpans,
			Service:     "ctl",
		})
		if err != nil {
			fatal(err)
		}
		defer rc.Close()
	} else if hedge.Enabled {
		fatal(fmt.Errorf("-hedge needs at least two -addr endpoints"))
	}
	// admin lazily dials the first address for the single-endpoint ops.
	var c *wire.Client
	admin := func() *wire.Client {
		if c == nil {
			var err error
			c, err = wire.Dial(addrs[0])
			if err != nil {
				fatal(err)
			}
			if *timeout > 0 {
				c.SetCallTimeout(*timeout)
			}
		}
		return c
	}
	defer func() {
		if c != nil {
			c.Close()
		}
	}()

	switch args[0] {
	case "ping":
		start := time.Now()
		var err error
		if rc != nil {
			err = rc.Ping()
		} else {
			err = admin().Ping()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pong in %v\n", time.Since(start).Round(time.Microsecond))
		breakerSummary(rc)

	case "list":
		names, err := admin().List()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}

	case "endpoints":
		// Federation membership: -addr should point at a continuum-router.
		members, err := admin().Endpoints()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %-21s %-9s %5s %6s %9s %6s %8s %6s\n",
			"MEMBER", "ADDR", "STATE", "GEN", "QUEUE", "INFLIGHT", "SLOTS", "CAP", "AGE")
		for _, m := range members {
			slots := fmt.Sprintf("%d", m.SlotLimit)
			if m.SlotLimit <= 0 {
				slots = "-"
			}
			state := m.State
			if m.Cordoned && state == "alive" {
				state = "cordoned"
			}
			fmt.Printf("%-12s %-21s %-9s %5d %6d %9d %6s %8d %6s\n",
				m.Name, m.Addr, state, m.Generation, m.QueueDepth, m.InFlight,
				slots, m.Capacity,
				(time.Duration(m.AgeMS) * time.Millisecond).Round(time.Millisecond))
		}

	case "stats":
		stats, err := admin().Stats()
		if err != nil {
			fatal(err)
		}
		for _, s := range stats {
			fmt.Printf("%s: capacity=%d running=%d invocations=%d cold=%d warm=%d\n",
				s.Name, s.Capacity, s.Running, s.Invocations, s.ColdStarts, s.WarmHits)
		}

	case "invoke":
		if len(args) < 2 {
			usage()
		}
		payload := ""
		if len(args) >= 3 {
			payload = args[2]
		}
		var out []byte
		var err error
		switch {
		case rc != nil:
			// The reliable client starts the trace itself when ctlSpans is
			// configured (root span per call).
			out, err = rc.InvokeContext(baseCtx, args[1], []byte(payload))
		case ctlSpans != nil:
			// Raw single-endpoint client: start the trace here and run the
			// call under it so the send span (and the server's spans)
			// join it.
			c := admin()
			c.SetSpans(ctlSpans, "ctl")
			ctx := trace.NewContext(baseCtx,
				trace.SpanContext{TraceID: trace.NewTraceID()})
			out, err = c.InvokeContext(ctx, args[1], []byte(payload))
		default:
			out, err = admin().InvokeContext(baseCtx, args[1], []byte(payload))
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		breakerSummary(rc)
		flushSpans(ctlSpans, *traceOut)

	case "top":
		topFlags := flag.NewFlagSet("top", flag.ExitOnError)
		interval := topFlags.Duration("i", 2*time.Second, "refresh interval")
		iters := topFlags.Int("n", 0, "number of refreshes (0 = forever)")
		if err := topFlags.Parse(args[1:]); err != nil {
			fatal(err)
		}
		runTop(admin(), *interval, *iters)

	case "bench":
		if len(args) < 2 {
			usage()
		}
		benchFlags := flag.NewFlagSet("bench", flag.ExitOnError)
		n := benchFlags.Int("n", 1000, "total invocations")
		conc := benchFlags.Int("c", 8, "concurrent workers")
		payload := benchFlags.String("p", "", "payload")
		mux := benchFlags.Bool("mux", false, "share one multiplexed connection across all workers instead of dialing per worker")
		if err := benchFlags.Parse(args[2:]); err != nil {
			fatal(err)
		}
		runBench(baseCtx, addrs, *timeout, hedge, args[1], []byte(*payload), *n, *conc, *mux)

	case "trace":
		traceFlags := flag.NewFlagSet("trace", flag.ExitOnError)
		slowest := traceFlags.Int("slowest", 0, "summarize the N slowest retained traces instead of rendering one")
		chrome := traceFlags.String("chrome", "", "write the assembled trace as a Chrome trace-event file (open in chrome://tracing or Perfetto)")
		local := traceFlags.String("local", "", "merge spans from a local span file (written by -trace-out)")
		if err := traceFlags.Parse(args[1:]); err != nil {
			fatal(err)
		}
		id := traceFlags.Arg(0)
		if traceFlags.NArg() > 1 {
			// Accept `trace <id> -chrome f` as well as `trace -chrome f
			// <id>`: the stdlib stops flag parsing at the first positional
			// argument, so re-parse whatever followed the ID.
			if err := traceFlags.Parse(traceFlags.Args()[1:]); err != nil {
				fatal(err)
			}
		}
		if id == "" && *slowest <= 0 {
			fatal(fmt.Errorf("trace: need a trace ID or -slowest N"))
		}
		runTrace(addrs, *timeout, id, *slowest, *chrome, *local)

	default:
		usage()
	}
}

// flushSpans writes the client-side spans of a traced run to the
// -trace-out file and prints the trace IDs it recorded, so the user can
// hand one straight to `continuumctl trace`.
func flushSpans(store *trace.SpanStore, path string) {
	if store == nil || path == "" {
		return
	}
	// A hedged race's losing arm (and a retry still unwinding) settles
	// asynchronously just after the winner returns; wait for the store to
	// go quiet — bounded at ~500ms — so the file includes every arm.
	prev := -1
	for i := 0; i < 20; i++ {
		n := store.Len()
		if n == prev {
			break
		}
		prev = n
		time.Sleep(25 * time.Millisecond)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(fmt.Errorf("trace-out: %w", err))
	}
	if err := store.WriteJSON(f, ""); err != nil {
		f.Close()
		fatal(fmt.Errorf("trace-out: %w", err))
	}
	if err := f.Close(); err != nil {
		fatal(fmt.Errorf("trace-out: %w", err))
	}
	for _, s := range trace.Summarize(store.Snapshot()) {
		fmt.Fprintf(os.Stderr, "trace %s: %d client spans written to %s\n", s.TraceID, s.Spans, path)
	}
}

// runTrace pulls every endpoint's span store (plus an optional local
// span file), merges the sets, and either summarizes the slowest traces
// or renders one assembled trace as a tree — optionally exporting it as
// a Chrome trace-event file through the simulator's exporter, so live
// and simulated runs open in the same viewer.
func runTrace(addrs []string, timeout time.Duration, id string, slowest int, chrome, local string) {
	sets := make([][]*trace.Span, 0, len(addrs)+1)
	for _, a := range addrs {
		c, err := wire.Dial(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s unreachable: %v\n", a, err)
			continue
		}
		if timeout > 0 {
			c.SetCallTimeout(timeout)
		}
		pulled, err := c.Trace(id)
		c.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s: %v\n", a, err)
			continue
		}
		set := make([]*trace.Span, len(pulled))
		for i := range pulled {
			set[i] = &pulled[i]
		}
		sets = append(sets, set)
	}
	if local != "" {
		f, err := os.Open(local)
		if err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		spans, err := trace.ReadSpans(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sets = append(sets, spans)
	}
	merged := trace.MergeSpans(sets...)
	if slowest > 0 {
		summaries := trace.Summarize(merged)
		if len(summaries) > slowest {
			summaries = summaries[:slowest]
		}
		fmt.Printf("%-18s %-24s %6s %6s %12s %5s\n", "TRACE", "ROOT", "SPANS", "SVCS", "DURATION", "ERR")
		for _, s := range summaries {
			errMark := ""
			if s.Err {
				errMark = "!"
			}
			fmt.Printf("%-18s %-24s %6d %6d %12v %5s\n",
				s.TraceID, s.Root, s.Spans, s.Services, s.Duration.Round(time.Microsecond), errMark)
		}
		return
	}
	var spans []*trace.Span
	for _, sp := range merged {
		if sp.TraceID == id {
			spans = append(spans, sp)
		}
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("trace %s: no spans retained at %s (rings overwrite; pull sooner or raise -trace-buf)", id, strings.Join(addrs, ",")))
	}
	fmt.Printf("trace %s: %d spans\n", id, len(spans))
	renderTraceTree(spans)
	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			fatal(err)
		}
		if err := trace.SpansToTracer(spans).WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s\n", chrome)
	}
}

// renderTraceTree prints one trace's spans as an indented parent/child
// tree with offsets relative to the earliest span. Spans whose parent
// was lost (ring overwrite, legacy hop) surface as extra roots rather
// than disappearing.
func renderTraceTree(spans []*trace.Span) {
	byID := make(map[string]*trace.Span, len(spans))
	children := make(map[string][]*trace.Span)
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	var roots []*trace.Span
	for _, sp := range spans {
		if sp.Parent != "" && byID[sp.Parent] != nil {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	epoch := spans[0].Start
	for _, sp := range spans {
		if sp.Start < epoch {
			epoch = sp.Start
		}
	}
	var walk func(sp *trace.Span, depth int)
	walk = func(sp *trace.Span, depth int) {
		indent := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s%-8s %s [%s]", indent, sp.Service, sp.Name, sp.Kind)
		if sp.Attempt > 0 {
			line += fmt.Sprintf(" attempt=%d", sp.Attempt)
		}
		for _, k := range sortedAttrKeys(sp.Attrs) {
			line += fmt.Sprintf(" %s=%s", k, sp.Attrs[k])
		}
		line += fmt.Sprintf("  +%v %v",
			time.Duration(sp.Start-epoch).Round(time.Microsecond),
			sp.Duration().Round(time.Microsecond))
		if sp.Err != "" {
			line += " err=" + sp.Err
		}
		fmt.Println(line)
		for _, ch := range children[sp.SpanID] {
			walk(ch, depth+1)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}
}

func sortedAttrKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// runTop polls the server's live per-function metrics and renders them as
// a table, refreshing until interrupted (or iters refreshes with -n).
func runTop(c *wire.Client, interval time.Duration, iters int) {
	for i := 0; iters == 0 || i < iters; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		rows, err := c.Top()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s  (%d functions)\n", time.Now().Format("15:04:05"), len(rows))
		fmt.Printf("%-20s %-12s %8s %10s %10s %10s %6s %6s\n",
			"ENDPOINT", "FUNCTION", "CALLS", "P50", "P90", "P99", "COLD", "WARM")
		for _, r := range rows {
			fmt.Printf("%-20s %-12s %8d %10s %10s %10s %6d %6d\n",
				r.Endpoint, r.Fn, r.Count,
				metrics.FormatDuration(r.P50),
				metrics.FormatDuration(r.P90),
				metrics.FormatDuration(r.P99),
				r.ColdStarts, r.WarmHits)
		}
		fmt.Println()
	}
}

// benchCaller is the slice of the client API runBench needs; both
// wire.Client and wire.ReliableClient satisfy it.
type benchCaller interface {
	InvokeContext(ctx context.Context, fn string, payload []byte) ([]byte, error)
	Close() error
}

// runBench fires n invocations across conc workers, printing throughput
// and latency percentiles. By default each worker dials its own
// connection (reliable clients when several addresses are given); with
// mux all workers share ONE multiplexed client, so every call rides the
// same connection with out-of-order responses — the way to see the
// pipelined wire protocol's throughput rather than the kernel's accept
// rate.
func runBench(ctx context.Context, addrs []string, timeout time.Duration, hedge wire.HedgeConfig, fn string, payload []byte, n, conc int, mux bool) {
	var rcsMu sync.Mutex
	var rcs []*wire.ReliableClient // for the post-run hedge summary
	dial := func() (benchCaller, error) {
		if len(addrs) > 1 {
			rc, err := wire.NewReliableClient(wire.ReliableConfig{Addrs: addrs, CallTimeout: timeout, Hedge: hedge})
			if err == nil {
				rcsMu.Lock()
				rcs = append(rcs, rc)
				rcsMu.Unlock()
			}
			return rc, err
		}
		c, err := wire.Dial(addrs[0])
		if err != nil {
			return nil, err
		}
		if timeout > 0 {
			c.SetCallTimeout(timeout)
		}
		return c, nil
	}
	var shared benchCaller
	if mux {
		var err error
		if shared, err = dial(); err != nil {
			fatal(fmt.Errorf("bench dial: %w", err))
		}
		defer shared.Close()
	}
	per := n / conc
	lats := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conc; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := shared
			if c == nil {
				var err error
				c, err = dial()
				if err != nil {
					fmt.Fprintln(os.Stderr, "bench dial:", err)
					return
				}
				defer c.Close()
			}
			for j := 0; j < per; j++ {
				t0 := time.Now()
				if _, err := c.InvokeContext(ctx, fn, payload); err != nil {
					fmt.Fprintln(os.Stderr, "bench invoke:", err)
					return
				}
				lats[i] = append(lats[i], time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		fatal(fmt.Errorf("no successful invocations"))
	}
	sortDurations(all)
	fmt.Printf("%d calls in %v: %.0f calls/s\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n",
		all[len(all)/2].Round(time.Microsecond),
		all[len(all)*9/10].Round(time.Microsecond),
		all[len(all)*99/100].Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond))
	if hedge.Enabled {
		var launched, wins int64
		for _, rc := range rcs {
			l, w := rc.HedgeStats()
			launched += l
			wins += w
		}
		fmt.Printf("hedges: %d launched, %d won\n", launched, wins)
	}
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// splitAddrs parses the -addr flag into a clean address list.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		fatal(fmt.Errorf("no endpoint address given"))
	}
	return out
}

// breakerSummary prints each endpoint's circuit state (and, when hedging
// ran, the hedge counters) after a federation command; nil-safe for the
// single-address path.
func breakerSummary(rc *wire.ReliableClient) {
	if rc == nil {
		return
	}
	states := rc.BreakerStates()
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(os.Stderr, "breaker %s: %s\n", k, states[k])
	}
	if launched, wins := rc.HedgeStats(); launched > 0 {
		fmt.Fprintf(os.Stderr, "hedges: %d launched, %d won\n", launched, wins)
	}
}

// parseHedge turns the -hedge flag into a wire.HedgeConfig: "" = off,
// "auto" = p99-derived delay, anything else = a fixed delay duration.
func parseHedge(s string) (wire.HedgeConfig, error) {
	switch s {
	case "":
		return wire.HedgeConfig{}, nil
	case "auto":
		return wire.HedgeConfig{Enabled: true}, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return wire.HedgeConfig{}, fmt.Errorf("-hedge: want 'auto' or a positive duration, got %q", s)
		}
		return wire.HedgeConfig{Enabled: true, Delay: d}, nil
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `continuumctl [-addr host:port[,host:port...]] [-timeout d] [-hedge auto|dur] <command>

commands:
  ping                      round-trip check
  list                      registered functions
  endpoints                 federation membership table (point -addr at a continuum-router)
  stats                     endpoint counters
  invoke <fn> [payload]     call a function
  top [-i interval] [-n refreshes]        live per-function latency table
  bench <fn> [-n N] [-c C] [-p payload] [-mux]   load test (-mux: one shared multiplexed connection)
  trace <id> [-chrome file] [-local file]        assemble one cross-daemon trace from every -addr
  trace -slowest N [-local file]                 summarize the slowest retained traces

With several -addr endpoints, ping/invoke/bench retry with backoff and
fail over across them behind per-endpoint circuit breakers; -timeout
bounds each round trip. -hedge additionally races slow in-flight calls
against a second endpoint ('auto' = p99-derived delay, or a fixed
duration like '5ms'). -trace-out FILE traces invoke calls, saving the
client-side spans to FILE for later assembly with trace -local.`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "continuumctl:", err)
	os.Exit(1)
}
