// Command continuum-sim runs a JSON scenario through the continuum
// simulator and prints the measured report.
//
// Usage:
//
//	continuum-sim scenario validate examples/scenarios/*.json
//	continuum-sim scenario run -f flash-crowd.json            # sim backend
//	continuum-sim scenario run -f flash-crowd.json -backend live -time-scale 0.1
//	continuum-sim scenario stress -nodes 1000 -budget 60s     # scale harness
//	continuum-sim scenario example                            # documented sample
//
// The legacy single-shot flags remain:
//
//	continuum-sim -f scenario.json        # run a scenario file
//	continuum-sim -example                # print a documented sample scenario
//	continuum-sim -example | continuum-sim -f -
//	continuum-sim -f scenario.json -trace out.jsonl        # span log, one JSON event per line
//	continuum-sim -f scenario.json -chrome-trace out.json  # open in Perfetto / chrome://tracing
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		scenarioMain(os.Args[2:])
		return
	}
	file := flag.String("f", "", "scenario JSON file ('-' for stdin)")
	example := flag.Bool("example", false, "print a sample scenario and exit")
	csv := flag.Bool("csv", false, "emit the report as CSV")
	gantt := flag.Int("gantt", 0, "also print an ASCII busy-timeline of the given width")
	traceOut := flag.String("trace", "", "write the event trace as JSONL to this file")
	chromeOut := flag.String("chrome-trace", "", "write a Chrome trace-event JSON file (Perfetto-compatible)")
	flag.Parse()

	if *example {
		printExample()
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "continuum-sim: -f scenario.json required (or -example, or the scenario subcommands)")
		flag.Usage()
		os.Exit(2)
	}

	s, err := loadScenario(*file)
	if err != nil {
		fatal(err)
	}
	report, tr, err := s.RunTraced()
	if err != nil {
		fatal(err)
	}
	printReport(report, *csv)
	if *gantt > 0 {
		fmt.Println()
		fmt.Print(tr.Gantt(*gantt))
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, tr.WriteJSONL); err != nil {
			fatal(err)
		}
	}
	if *chromeOut != "" {
		if err := writeFile(*chromeOut, tr.WriteChromeTrace); err != nil {
			fatal(err)
		}
	}
}

// writeFile streams one of the tracer's export formats into path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "continuum-sim:", err)
	os.Exit(1)
}
