package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"continuum/internal/scenario"
)

// scenarioMain dispatches the `continuum-sim scenario <cmd>` subcommand
// family — the experiment-facing interface to the unified scenario DSL:
//
//	continuum-sim scenario validate file.json...   # check without running
//	continuum-sim scenario run -f file.json        # run (sim or live backend)
//	continuum-sim scenario stress -nodes 1000      # generated scale harness
//	continuum-sim scenario example                 # print a documented sample
func scenarioMain(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "continuum-sim scenario: subcommand required: validate | run | stress | example")
		os.Exit(2)
	}
	switch args[0] {
	case "validate":
		scenarioValidate(args[1:])
	case "run":
		scenarioRun(args[1:])
	case "stress":
		scenarioStress(args[1:])
	case "example":
		printExample()
	default:
		fmt.Fprintf(os.Stderr, "continuum-sim scenario: unknown subcommand %q (want validate | run | stress | example)\n", args[0])
		os.Exit(2)
	}
}

func printExample() {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(scenario.Example()); err != nil {
		fatal(err)
	}
}

// scenarioValidate checks every named file and reports all failures
// before exiting non-zero, so a library sweep shows the full damage.
func scenarioValidate(args []string) {
	fs := flag.NewFlagSet("scenario validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "continuum-sim scenario validate: at least one scenario file required")
		os.Exit(2)
	}
	failed := 0
	for _, path := range fs.Args() {
		s, err := loadScenario(path)
		if err == nil {
			err = s.Validate()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "continuum-sim: %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s: ok (%s: %d nodes, %d links, %d events)\n",
			path, s.Name, len(s.Nodes), len(s.Links), len(s.Events))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// scenarioRun executes one scenario on the chosen backend.
func scenarioRun(args []string) {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	file := fs.String("f", "", "scenario JSON file ('-' for stdin)")
	backend := fs.String("backend", "sim", "execution backend: sim (virtual time) or live (in-process continuumd fleet)")
	timeScale := fs.Float64("time-scale", 1, "live backend: wall-clock seconds per scenario second")
	function := fs.String("function", "", "live backend: builtin each request invokes (default echo)")
	csv := fs.Bool("csv", false, "emit the report as CSV")
	gantt := fs.Int("gantt", 0, "sim backend: also print an ASCII busy-timeline of the given width")
	traceOut := fs.String("trace", "", "sim backend: write the event trace as JSONL to this file")
	chromeOut := fs.String("chrome-trace", "", "sim backend: write a Chrome trace-event JSON file")
	fs.Parse(args)
	if *file == "" {
		fmt.Fprintln(os.Stderr, "continuum-sim scenario run: -f scenario.json required")
		fs.Usage()
		os.Exit(2)
	}
	s, err := loadScenario(*file)
	if err != nil {
		fatal(err)
	}

	switch *backend {
	case "sim":
		report, tr, err := s.RunTraced()
		if err != nil {
			fatal(err)
		}
		printReport(report, *csv)
		if *gantt > 0 {
			fmt.Println()
			fmt.Print(tr.Gantt(*gantt))
		}
		if *traceOut != "" {
			if err := writeFile(*traceOut, tr.WriteJSONL); err != nil {
				fatal(err)
			}
		}
		if *chromeOut != "" {
			if err := writeFile(*chromeOut, tr.WriteChromeTrace); err != nil {
				fatal(err)
			}
		}
	case "live":
		if *gantt > 0 || *traceOut != "" || *chromeOut != "" {
			fatal(fmt.Errorf("-gantt/-trace/-chrome-trace are simulator exports; the live backend has no virtual-time tracer"))
		}
		report, err := scenario.LiveRunner{Options: scenario.LiveOptions{
			TimeScale: *timeScale,
			Function:  *function,
		}}.Run(s)
		if err != nil {
			fatal(err)
		}
		printReport(report, *csv)
		if report.Lost > 0 {
			fatal(fmt.Errorf("live run lost %d requests", report.Lost))
		}
	default:
		fatal(fmt.Errorf("unknown backend %q (want sim or live)", *backend))
	}
}

// scenarioStress generates the large-fleet scenario, optionally dumps
// it, and runs it on the simulator under a wall-clock budget — the scale
// gate `make stress` enforces.
func scenarioStress(args []string) {
	fs := flag.NewFlagSet("scenario stress", flag.ExitOnError)
	nodes := fs.Int("nodes", 1000, "total fleet size")
	seed := fs.Uint64("seed", 42, "scenario seed")
	budget := fs.Duration("budget", 0, "fail if validate+run exceeds this wall-clock budget (0 = unlimited)")
	out := fs.String("out", "", "also write the generated scenario JSON to this file")
	validateOnly := fs.Bool("validate", false, "generate and validate only, skip the run")
	csv := fs.Bool("csv", false, "emit the report as CSV")
	fs.Parse(args)

	s := scenario.GenerateStress(scenario.StressSpec{Nodes: *nodes, Seed: *seed})
	if *out != "" {
		raw, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	if err := s.Validate(); err != nil {
		fatal(err)
	}
	if *validateOnly {
		fmt.Printf("%s: ok (%d nodes, %d links, %d events) validated in %v\n",
			s.Name, len(s.Nodes), len(s.Links), len(s.Events), time.Since(start).Round(time.Millisecond))
		return
	}
	report, err := s.Run()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	printReport(report, *csv)
	fmt.Printf("\nwall clock: %v\n", elapsed.Round(time.Millisecond))
	if *budget > 0 && elapsed > *budget {
		fatal(fmt.Errorf("stress run took %v, budget %v", elapsed.Round(time.Millisecond), *budget))
	}
}

func printReport(r *scenario.Report, csv bool) {
	if csv {
		fmt.Print(r.Table().CSV())
	} else {
		fmt.Print(r.Table().String())
	}
}

// loadScenario reads and parses one scenario file ('-' for stdin).
func loadScenario(path string) (*scenario.Scenario, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return scenario.Parse(raw)
}
