package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"continuum/internal/scenario"
)

// scenarioMain dispatches the `continuum-sim scenario <cmd>` subcommand
// family — the experiment-facing interface to the unified scenario DSL:
//
//	continuum-sim scenario validate file.json...   # check without running
//	continuum-sim scenario run -f file.json        # run (sim or live backend)
//	continuum-sim scenario stress -nodes 1000      # generated scale harness
//	continuum-sim scenario example                 # print a documented sample
func scenarioMain(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "continuum-sim scenario: subcommand required: validate | run | stress | example")
		os.Exit(2)
	}
	switch args[0] {
	case "validate":
		scenarioValidate(args[1:])
	case "run":
		scenarioRun(args[1:])
	case "stress":
		scenarioStress(args[1:])
	case "example":
		printExample()
	default:
		fmt.Fprintf(os.Stderr, "continuum-sim scenario: unknown subcommand %q (want validate | run | stress | example)\n", args[0])
		os.Exit(2)
	}
}

func printExample() {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(scenario.Example()); err != nil {
		fatal(err)
	}
}

// scenarioValidate checks every named file and reports all failures
// before exiting non-zero, so a library sweep shows the full damage.
func scenarioValidate(args []string) {
	fs := flag.NewFlagSet("scenario validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "continuum-sim scenario validate: at least one scenario file required")
		os.Exit(2)
	}
	failed := 0
	for _, path := range fs.Args() {
		s, err := loadScenario(path)
		if err == nil {
			err = s.Validate()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "continuum-sim: %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s: ok (%s: %d nodes, %d links, %d events)\n",
			path, s.Name, len(s.Nodes), len(s.Links), len(s.Events))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// scenarioRun executes one scenario on the chosen backend.
func scenarioRun(args []string) {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	file := fs.String("f", "", "scenario JSON file ('-' for stdin)")
	backend := fs.String("backend", "sim", "execution backend: sim (virtual time) or live (in-process continuumd fleet)")
	timeScale := fs.Float64("time-scale", 1, "live backend: wall-clock seconds per scenario second")
	function := fs.String("function", "", "live backend: builtin each request invokes (default echo)")
	csv := fs.Bool("csv", false, "emit the report as CSV")
	gantt := fs.Int("gantt", 0, "sim backend: also print an ASCII busy-timeline of the given width")
	traceOut := fs.String("trace", "", "sim backend: write the event trace as JSONL to this file")
	chromeOut := fs.String("chrome-trace", "", "sim backend: write a Chrome trace-event JSON file")
	parallel := fs.Int("parallel", 1, "sim backend: workload-synthesis workers (output is bit-identical for any value)")
	router := fs.Bool("router", false, "live backend: front the fleet with an in-process continuum-router and drive every request through it")
	policy := fs.String("policy", "", "live backend with -router: routing policy, hash or least-loaded (default hash)")
	fs.Parse(args)
	if *file == "" {
		fmt.Fprintln(os.Stderr, "continuum-sim scenario run: -f scenario.json required")
		fs.Usage()
		os.Exit(2)
	}
	s, err := loadScenario(*file)
	if err != nil {
		fatal(err)
	}

	switch *backend {
	case "sim":
		report, tr, err := s.RunTracedParallel(*parallel)
		if err != nil {
			fatal(err)
		}
		printReport(report, *csv)
		if *gantt > 0 {
			fmt.Println()
			fmt.Print(tr.Gantt(*gantt))
		}
		if *traceOut != "" {
			if err := writeFile(*traceOut, tr.WriteJSONL); err != nil {
				fatal(err)
			}
		}
		if *chromeOut != "" {
			if err := writeFile(*chromeOut, tr.WriteChromeTrace); err != nil {
				fatal(err)
			}
		}
	case "live":
		if *gantt > 0 || *traceOut != "" || *chromeOut != "" {
			fatal(fmt.Errorf("-gantt/-trace/-chrome-trace are simulator exports; the live backend has no virtual-time tracer"))
		}
		if *parallel > 1 {
			fatal(fmt.Errorf("-parallel is a simulator option; the live backend runs in wall-clock time"))
		}
		report, err := scenario.LiveRunner{Options: scenario.LiveOptions{
			TimeScale: *timeScale,
			Function:  *function,
			Router:    *router,
			Policy:    *policy,
		}}.Run(s)
		if err != nil {
			fatal(err)
		}
		printReport(report, *csv)
		if report.Lost > 0 {
			fatal(fmt.Errorf("live run lost %d requests", report.Lost))
		}
	default:
		fatal(fmt.Errorf("unknown backend %q (want sim or live)", *backend))
	}
}

// scenarioStress generates the large-fleet scenario, optionally dumps
// it, and runs it on the simulator under a wall-clock budget — the scale
// gate `make stress` enforces. With -runs > 1 it becomes a seed sweep:
// replicas with consecutive seeds run across -parallel workers (each
// replica is an independent kernel, so whole runs shard cleanly), and
// reports print in seed order regardless of completion order.
func scenarioStress(args []string) {
	fs := flag.NewFlagSet("scenario stress", flag.ExitOnError)
	nodes := fs.Int("nodes", 1000, "total fleet size")
	seed := fs.Uint64("seed", 42, "scenario seed (first seed of a -runs sweep)")
	runs := fs.Int("runs", 1, "replicas to run with consecutive seeds")
	parallel := fs.Int("parallel", 1, "worker goroutines for a -runs sweep (each run is one independent kernel)")
	budget := fs.Duration("budget", 0, "fail if validate+run exceeds this wall-clock budget (0 = unlimited, covers the whole sweep)")
	out := fs.String("out", "", "also write the generated scenario JSON to this file")
	validateOnly := fs.Bool("validate", false, "generate and validate only, skip the run")
	csv := fs.Bool("csv", false, "emit the report as CSV")
	fs.Parse(args)
	if *runs < 1 {
		fatal(fmt.Errorf("-runs must be >= 1, got %d", *runs))
	}

	s := scenario.GenerateStress(scenario.StressSpec{Nodes: *nodes, Seed: *seed})
	if *out != "" {
		raw, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	if err := s.Validate(); err != nil {
		fatal(err)
	}
	if *validateOnly {
		fmt.Printf("%s: ok (%d nodes, %d links, %d events) validated in %v\n",
			s.Name, len(s.Nodes), len(s.Links), len(s.Events), time.Since(start).Round(time.Millisecond))
		return
	}

	reports := make([]*scenario.Report, *runs)
	errs := make([]error, *runs)
	runOne := func(i int) {
		si := s
		if i > 0 {
			si = scenario.GenerateStress(scenario.StressSpec{Nodes: *nodes, Seed: *seed + uint64(i)})
		}
		reports[i], errs[i] = si.Run()
	}
	workers := *parallel
	if workers > *runs {
		workers = *runs
	}
	if workers <= 1 {
		for i := 0; i < *runs; i++ {
			runOne(i)
		}
	} else {
		var cursor int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&cursor, 1))
					if i >= *runs {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	var completed int64
	for i := 0; i < *runs; i++ {
		if errs[i] != nil {
			fatal(fmt.Errorf("seed %d: %w", *seed+uint64(i), errs[i]))
		}
		if *runs > 1 {
			fmt.Printf("seed %d:\n", *seed+uint64(i))
		}
		printReport(reports[i], *csv)
		completed += reports[i].Completed
	}
	fmt.Printf("\nwall clock: %v", elapsed.Round(time.Millisecond))
	if *runs > 1 {
		fmt.Printf(" (%d runs x %d workers, %.0f tasks/sec aggregate)",
			*runs, workers, float64(completed)/elapsed.Seconds())
	}
	fmt.Println()
	if *budget > 0 && elapsed > *budget {
		fatal(fmt.Errorf("stress sweep took %v, budget %v", elapsed.Round(time.Millisecond), *budget))
	}
}

func printReport(r *scenario.Report, csv bool) {
	if csv {
		fmt.Print(r.Table().CSV())
	} else {
		fmt.Print(r.Table().String())
	}
}

// loadScenario reads and parses one scenario file ('-' for stdin).
func loadScenario(path string) (*scenario.Scenario, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return scenario.Parse(raw)
}
