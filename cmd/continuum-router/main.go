// Command continuum-router is the federation control plane: a registry
// and router that many continuumd daemons register with over the wire
// protocol. Daemons join with -router, heartbeat their live load, and
// the router routes client invocations across the fleet with a
// pluggable policy — consistent hashing on function+payload affinity
// (the default: warm containers stay warm) or least-loaded (new work
// flows toward spare capacity).
//
// Usage:
//
//	continuum-router -listen 127.0.0.1:9080
//	continuum-router -listen 127.0.0.1:9080 -policy least-loaded -heartbeat 2s
//	continuum-router -listen 127.0.0.1:9080 -metrics-addr 127.0.0.1:9081
//
// Clients talk to the router exactly as they would to a single daemon:
// continuumctl invoke/bench/ping against the router's address routes
// across the fleet; `continuumctl endpoints` renders the live
// membership table. Routing composes the policy's preference order with
// the reliable-client machinery — retry with backoff walks down the
// preference list, per-member circuit breakers route around repeat
// offenders, and -hedge races a second member against a slow first
// choice — so member deaths and drains resolve without losing accepted
// requests.
//
// Membership is leased: a member silent for -suspect-after heartbeat
// intervals stops receiving new work (state "suspect"), and one silent
// for -expire-after intervals is expired and dropped. A draining member
// (continuumd shutting down, `Leave(drain)`) stops receiving new work
// immediately but keeps its connections until in-flight work finishes.
//
// With -metrics-addr the router serves Prometheus text exposition on
// /metrics (federation_* membership and routing series plus the wire
// client/server series), a liveness probe on /healthz, and its span
// store on /debug/traces — traced invocations record the router hop, so
// `continuumctl trace` shows the route decision chain between client
// and daemon spans.
//
// On SIGINT/SIGTERM the router drains in-flight routes (bounded by
// -grace) and exits. Daemons keep retrying registration, so a restarted
// router rebuilds its membership within one heartbeat interval — agents
// whose generation it no longer knows are told to re-register.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers forwarded onto the metrics mux under -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"continuum/internal/federation"
	"continuum/internal/metrics"
	"continuum/internal/retry"
	"continuum/internal/trace"
	"continuum/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9080", "address to serve on")
	policyName := flag.String("policy", "hash", "routing policy: hash (consistent hashing on function+payload) or least-loaded")
	heartbeat := flag.Duration("heartbeat", 0, "heartbeat interval granted to members (0 = default 2s)")
	suspectAfter := flag.Int("suspect-after", 0, "missed heartbeat intervals before a member stops receiving new work (0 = default 2)")
	expireAfter := flag.Int("expire-after", 0, "missed heartbeat intervals before a member is expired and dropped (0 = default 4)")
	callTimeout := flag.Duration("timeout", 0, "per-routed-call deadline (0 = none)")
	hedgeSpec := flag.String("hedge", "", "hedge slow routed calls at a second member: 'auto' (p99-derived delay) or a fixed duration like '5ms' (empty = off)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (empty = off)")
	verbose := flag.Bool("verbose", false, "log membership transitions and one structured line per request")
	workers := flag.Int("workers", 0, "max concurrent requests per connection for multiplexing clients (0 = default)")
	grace := flag.Duration("grace", 10*time.Second, "in-flight drain bound for graceful shutdown on SIGINT/SIGTERM")
	traceBuf := flag.Int("trace-buf", 0, "span ring-buffer capacity for distributed tracing (0 = default 4096)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof debug handlers on the -metrics-addr mux")
	flag.Parse()

	policy, ok := federation.PolicyByName(*policyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "continuum-router: -policy %q: want hash or least-loaded\n", *policyName)
		os.Exit(2)
	}
	hedge, err := parseHedge(*hedgeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "continuum-router:", err)
		os.Exit(2)
	}

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	var m *metrics.Registry
	if *metricsAddr != "" {
		m = metrics.NewRegistry()
	}
	spans := trace.NewSpanStore(*traceBuf)

	rt, err := federation.NewRouter(federation.RouterConfig{
		Registry: federation.Config{
			HeartbeatInterval: *heartbeat,
			SuspectAfter:      *suspectAfter,
			ExpireAfter:       *expireAfter,
		},
		Policy: policy,
		Client: wire.ReliableConfig{
			Retry:       retry.Policy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
			CallTimeout: *callTimeout,
			Hedge:       hedge,
		},
		Metrics: m,
		Spans:   spans,
		Logger:  logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "continuum-router:", err)
		os.Exit(1)
	}
	defer rt.Close()

	srv := &wire.Server{
		Invoker: rt,
		Ops:     rt,
		Workers: *workers,
		Name:    "router",
		Spans:   spans,
		Logger:  logger,
		Metrics: m,
	}
	if m != nil {
		go serveMetrics(*metricsAddr, m, spans, *pprof)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "continuum-router:", err)
		os.Exit(1)
	}
	fmt.Printf("continuum-router: routing with policy %q on %s (heartbeat %v)\n",
		*policyName, lis.Addr(), rt.Registry().HeartbeatInterval())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		s := <-sig
		fmt.Printf("continuum-router: %v: draining in-flight routes (grace %v)\n", s, *grace)
		srv.Shutdown(*grace)
		close(drained)
	}()

	if err := srv.Serve(lis); err != nil {
		fmt.Fprintln(os.Stderr, "continuum-router:", err)
		os.Exit(1)
	}
	<-drained
	routes, errs := rt.RouteStats()
	fmt.Printf("continuum-router: drained, exiting (%d routed, %d failed)\n", routes, errs)
}

// parseHedge turns the -hedge flag into a wire.HedgeConfig: "" = off,
// "auto" = p99-derived delay, anything else = a fixed delay duration.
func parseHedge(s string) (wire.HedgeConfig, error) {
	switch s {
	case "":
		return wire.HedgeConfig{}, nil
	case "auto":
		return wire.HedgeConfig{Enabled: true}, nil
	default:
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return wire.HedgeConfig{}, fmt.Errorf("-hedge: want 'auto' or a positive duration, got %q", s)
		}
		return wire.HedgeConfig{Enabled: true, Delay: d}, nil
	}
}

// serveMetrics exposes the router's registry in Prometheus text format,
// a liveness probe, and the span store as /debug/traces JSON (?trace=<id>
// filters to one trace); withPprof mounts net/http/pprof on the same mux.
func serveMetrics(addr string, m *metrics.Registry, spans *trace.SpanStore, withPprof bool) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		spans.WriteJSON(w, r.URL.Query().Get("trace"))
	})
	if withPprof {
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
	}
	fmt.Printf("continuum-router: metrics on http://%s/metrics\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil && !strings.Contains(err.Error(), "Server closed") {
		fmt.Fprintln(os.Stderr, "continuum-router: metrics server:", err)
	}
}
