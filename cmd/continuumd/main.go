// Command continuumd is a function-serving endpoint daemon: the real
// (non-simulated) mode of the reproduction's funcX analogue. It registers
// a set of built-in demonstration functions and serves the wire protocol
// over TCP. Run several instances on different ports to form a federation
// and drive them with continuumctl.
//
// Usage:
//
//	continuumd -listen 127.0.0.1:9090 -capacity 8 -cold 2ms
//	continuumd -listen 127.0.0.1:9090 -metrics-addr 127.0.0.1:9091
//	continuumd -listen 127.0.0.1:9090 -chaos 'err=0.1,delay=20ms,delayp=0.3'
//	continuumd -listen 127.0.0.1:9090 -router 127.0.0.1:9080
//
// With -router the daemon joins a continuum-router federation: it
// registers over the wire protocol, heartbeats its live load (queue
// depth, in-flight, slot limit, cordon state), re-registers whenever
// the router stops recognizing it, and on shutdown announces a
// graceful drain — the router stops routing new work here immediately
// while in-flight requests finish. -advertise overrides the address
// the router dials back (needed when -listen binds a wildcard).
//
// With -metrics-addr the daemon serves Prometheus text exposition on
// /metrics (per-function latency histograms, cold/warm splits, in-flight
// gauges, per-op wire counters), a liveness probe on /healthz, and the
// span store as JSON on /debug/traces (?trace=<id> filters to one
// trace). -pprof additionally mounts net/http/pprof on the same mux so
// live profiling needs no extra port.
//
// Tracing is always on (bounded by -trace-buf spans of ring memory):
// requests carrying wire trace context get per-hop spans — server,
// queue-wait, exec — recorded locally and pulled by `continuumctl
// trace`, which assembles one cross-daemon tree per trace ID. Untraced
// requests record nothing.
//
// Each accepted connection is multiplexed: requests carrying IDs are
// dispatched to a per-connection worker pool and answered out of order
// as they complete, so one client connection can keep many invocations
// in flight. -workers bounds that pool (ID-less peers stay strictly
// serial).
//
// With -max-queue the daemon runs priority-classed admission control in
// front of its container slots: admitted requests wait in bounded
// per-priority queues (low sheds first), the effective bound adapts by
// AIMD on observed queue wait, and shed requests are rejected
// immediately with a retryable overload error carrying a Retry-After
// hint that reliable clients honor as a backoff floor. The worker pool
// also breathes between -min-slots and -capacity with the backlog.
// Request priority rides the wire from the client (continuumctl
// -priority, or faas.WithPriority in code).
//
//	continuumd -listen 127.0.0.1:9090 -capacity 8 -max-queue 64
//	continuumd -listen 127.0.0.1:9090 -max-queue 64 -target-queue-wait 10ms -min-slots 2
//
// With -chaos the daemon injects faults into its own wire path — dropped
// connections, injected retryable errors, latency spikes, and whole down
// phases (see fault.ParseChaos for the spec grammar) — turning any
// federation member into a fault injector for reliability experiments.
//
// With -hedge the endpoint preempts cancelled invocations: when a hedged
// client abandons the losing arm of a request race, the abandoned
// invocation's capacity slot frees immediately instead of when its
// handler returns, so lost hedge races don't shrink effective capacity.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// lets in-flight requests finish (bounded by -grace), then flushes a
// final metrics snapshot before exiting.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers forwarded onto the metrics mux under -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/federation"
	"continuum/internal/metrics"
	"continuum/internal/trace"
	"continuum/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9090", "address to serve on")
	name := flag.String("name", "", "endpoint name (defaults to the listen address)")
	capacity := flag.Int("capacity", 8, "max concurrent containers")
	cold := flag.Duration("cold", 2*time.Millisecond, "cold-start provisioning delay")
	warmTTL := flag.Duration("warm-ttl", time.Minute, "idle warm-container lifetime")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (empty = off)")
	verbose := flag.Bool("verbose", false, "log one structured line per request")
	queueWait := flag.Duration("queue-wait", 0, "max wait for a free container slot before rejecting with a retryable overload error (0 = wait forever)")
	maxQueue := flag.Int("max-queue", 0, "enable priority-classed admission control with this hard queue bound (0 = off; low priority sheds first, shed responses carry Retry-After)")
	targetQueueWait := flag.Duration("target-queue-wait", 0, "queue-wait target the adaptive admission bound steers toward by AIMD (0 = 20ms; needs -max-queue)")
	minSlots := flag.Int("min-slots", 0, "elastic worker-pool floor under admission control (0 = capacity/4; needs -max-queue)")
	retryAfterFloor := flag.Duration("retry-after-floor", 0, "minimum Retry-After hint attached to shed responses (0 = 5ms; needs -max-queue)")
	execTimeout := flag.Duration("exec-timeout", 0, "per-invocation execution deadline (0 = none)")
	grace := flag.Duration("grace", 10*time.Second, "in-flight drain bound for graceful shutdown on SIGINT/SIGTERM")
	chaos := flag.String("chaos", "", "inject wire-level faults, e.g. 'drop=0.05,err=0.1,delay=20ms,delayp=0.3,up=10s,down=500ms,seed=1' (empty = off)")
	workers := flag.Int("workers", 0, "max concurrent requests per connection for multiplexing clients (0 = default)")
	hedge := flag.Bool("hedge", false, "free the capacity slot of a cancelled invocation immediately (server-side support for hedged clients: the losing hedge arm stops occupying a container slot)")
	traceBuf := flag.Int("trace-buf", 0, "span ring-buffer capacity for distributed tracing (0 = default 4096)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof debug handlers on the -metrics-addr mux")
	router := flag.String("router", "", "continuum-router address to register with; the daemon joins the federation and heartbeats its live load (empty = standalone)")
	advertise := flag.String("advertise", "", "address the router should dial to reach this daemon (defaults to -listen; set it when -listen binds a wildcard or NATed address)")
	flag.Parse()

	if *name == "" {
		*name = *listen
	}
	reg := faas.BuiltinRegistry()
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name:             *name,
		Capacity:         *capacity,
		ColdStart:        *cold,
		WarmTTL:          *warmTTL,
		QueueWait:        *queueWait,
		ExecTimeout:      *execTimeout,
		PreemptAbandoned: *hedge,
		Admission: faas.AdmissionConfig{
			Enabled:         *maxQueue > 0,
			MaxQueue:        *maxQueue,
			TargetQueueWait: *targetQueueWait,
			MinSlots:        *minSlots,
			RetryAfterFloor: *retryAfterFloor,
		},
	}, reg)
	if *maxQueue > 0 {
		fmt.Printf("continuumd: admission control enabled (max queue %d)\n", *maxQueue)
	}

	// One span store for the whole daemon: the wire server's request
	// spans and the endpoint's queue/exec spans land together, so one
	// pull (OpTrace or /debug/traces) returns this process's entire view
	// of any trace.
	spans := trace.NewSpanStore(*traceBuf)
	ep.SetSpans(spans)

	srv := &wire.Server{
		Invoker:   ep,
		Batcher:   ep,
		Registry:  reg,
		Endpoints: []*faas.Endpoint{ep},
		Workers:   *workers,
		Name:      *name,
		Spans:     spans,
	}
	if *verbose {
		srv.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *chaos != "" {
		spec, err := fault.ParseChaos(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "continuumd: -chaos:", err)
			os.Exit(2)
		}
		srv.Chaos = fault.NewChaos(spec)
		fmt.Printf("continuumd: chaos enabled (%s)\n", *chaos)
	}
	var m *metrics.Registry
	if *metricsAddr != "" {
		m = metrics.NewRegistry()
		ep.SetMetrics(m)
		srv.Metrics = m
		go serveMetrics(*metricsAddr, m, spans, *pprof)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "continuumd:", err)
		os.Exit(1)
	}
	fmt.Printf("continuumd: endpoint %q serving %d functions on %s (capacity %d, cold start %v)\n",
		*name, len(reg.Names()), lis.Addr(), *capacity, *cold)

	// Federated mode: join the router once the listener is serving, so
	// the advertised address is live before the router can route to it.
	var agent *federation.Agent
	if *router != "" {
		adv := *advertise
		if adv == "" {
			adv = lis.Addr().String()
		}
		agent = federation.NewAgent(federation.AgentConfig{
			RouterAddr: *router,
			Name:       *name,
			Advertise:  adv,
			Endpoint:   ep,
			Functions:  reg.Names(),
			Logger:     srv.Logger,
		})
		agent.Start()
		fmt.Printf("continuumd: joining federation at %s (advertising %s)\n", *router, adv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		s := <-sig
		fmt.Printf("continuumd: %v: draining in-flight requests (grace %v)\n", s, *grace)
		if agent != nil {
			// Announce the drain BEFORE shutting the listener down: the
			// router stops routing new work here immediately while the
			// connections carrying in-flight work stay up until it
			// finishes.
			ep.SetCordon(true)
			if err := agent.Leave(true); err != nil {
				fmt.Fprintln(os.Stderr, "continuumd: federation drain announce:", err)
			}
		}
		srv.Shutdown(*grace) // Serve returns nil once the drain completes
		close(drained)
	}()

	if err := srv.Serve(lis); err != nil {
		fmt.Fprintln(os.Stderr, "continuumd:", err)
		os.Exit(1)
	}
	<-drained
	ep.Close()
	if m != nil {
		// Flush the final counters so a scrape gap at exit loses nothing.
		fmt.Println("continuumd: final metrics snapshot:")
		m.WritePrometheus(os.Stdout)
	}
	fmt.Println("continuumd: drained, exiting")
}

// serveMetrics exposes the shared registry in Prometheus text format, a
// trivial liveness probe, and the span store as /debug/traces JSON
// (?trace=<id> filters to one trace); withPprof mounts net/http/pprof
// on the same mux. Scrapes read consistent snapshots; they never block
// the invoke path beyond the registry's per-metric locks (span
// snapshots are atomic reads).
func serveMetrics(addr string, m *metrics.Registry, spans *trace.SpanStore, withPprof bool) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		spans.WriteJSON(w, r.URL.Query().Get("trace"))
	})
	if withPprof {
		// net/http/pprof registers on DefaultServeMux at import; forward
		// its prefix so the handlers ride this mux (and only this mux).
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
	}
	fmt.Printf("continuumd: metrics on http://%s/metrics\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "continuumd: metrics server:", err)
	}
}
