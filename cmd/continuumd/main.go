// Command continuumd is a function-serving endpoint daemon: the real
// (non-simulated) mode of the reproduction's funcX analogue. It registers
// a set of built-in demonstration functions and serves the wire protocol
// over TCP. Run several instances on different ports to form a federation
// and drive them with continuumctl.
//
// Usage:
//
//	continuumd -listen 127.0.0.1:9090 -capacity 8 -cold 2ms
//	continuumd -listen 127.0.0.1:9090 -metrics-addr 127.0.0.1:9091
//	continuumd -listen 127.0.0.1:9090 -chaos 'err=0.1,delay=20ms,delayp=0.3'
//
// With -metrics-addr the daemon serves Prometheus text exposition on
// /metrics (per-function latency histograms, cold/warm splits, in-flight
// gauges, per-op wire counters) and a liveness probe on /healthz.
//
// Each accepted connection is multiplexed: requests carrying IDs are
// dispatched to a per-connection worker pool and answered out of order
// as they complete, so one client connection can keep many invocations
// in flight. -workers bounds that pool (ID-less peers stay strictly
// serial).
//
// With -chaos the daemon injects faults into its own wire path — dropped
// connections, injected retryable errors, latency spikes, and whole down
// phases (see fault.ParseChaos for the spec grammar) — turning any
// federation member into a fault injector for reliability experiments.
//
// With -hedge the endpoint preempts cancelled invocations: when a hedged
// client abandons the losing arm of a request race, the abandoned
// invocation's capacity slot frees immediately instead of when its
// handler returns, so lost hedge races don't shrink effective capacity.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// lets in-flight requests finish (bounded by -grace), then flushes a
// final metrics snapshot before exiting.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9090", "address to serve on")
	name := flag.String("name", "", "endpoint name (defaults to the listen address)")
	capacity := flag.Int("capacity", 8, "max concurrent containers")
	cold := flag.Duration("cold", 2*time.Millisecond, "cold-start provisioning delay")
	warmTTL := flag.Duration("warm-ttl", time.Minute, "idle warm-container lifetime")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (empty = off)")
	verbose := flag.Bool("verbose", false, "log one structured line per request")
	queueWait := flag.Duration("queue-wait", 0, "max wait for a free container slot before rejecting with a retryable overload error (0 = wait forever)")
	execTimeout := flag.Duration("exec-timeout", 0, "per-invocation execution deadline (0 = none)")
	grace := flag.Duration("grace", 10*time.Second, "in-flight drain bound for graceful shutdown on SIGINT/SIGTERM")
	chaos := flag.String("chaos", "", "inject wire-level faults, e.g. 'drop=0.05,err=0.1,delay=20ms,delayp=0.3,up=10s,down=500ms,seed=1' (empty = off)")
	workers := flag.Int("workers", 0, "max concurrent requests per connection for multiplexing clients (0 = default)")
	hedge := flag.Bool("hedge", false, "free the capacity slot of a cancelled invocation immediately (server-side support for hedged clients: the losing hedge arm stops occupying a container slot)")
	flag.Parse()

	if *name == "" {
		*name = *listen
	}
	reg := faas.BuiltinRegistry()
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name:             *name,
		Capacity:         *capacity,
		ColdStart:        *cold,
		WarmTTL:          *warmTTL,
		QueueWait:        *queueWait,
		ExecTimeout:      *execTimeout,
		PreemptAbandoned: *hedge,
	}, reg)

	srv := &wire.Server{
		Invoker:   ep,
		Batcher:   ep,
		Registry:  reg,
		Endpoints: []*faas.Endpoint{ep},
		Workers:   *workers,
	}
	if *verbose {
		srv.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *chaos != "" {
		spec, err := fault.ParseChaos(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "continuumd: -chaos:", err)
			os.Exit(2)
		}
		srv.Chaos = fault.NewChaos(spec)
		fmt.Printf("continuumd: chaos enabled (%s)\n", *chaos)
	}
	var m *metrics.Registry
	if *metricsAddr != "" {
		m = metrics.NewRegistry()
		ep.SetMetrics(m)
		srv.Metrics = m
		go serveMetrics(*metricsAddr, m)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "continuumd:", err)
		os.Exit(1)
	}
	fmt.Printf("continuumd: endpoint %q serving %d functions on %s (capacity %d, cold start %v)\n",
		*name, len(reg.Names()), lis.Addr(), *capacity, *cold)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		s := <-sig
		fmt.Printf("continuumd: %v: draining in-flight requests (grace %v)\n", s, *grace)
		srv.Shutdown(*grace) // Serve returns nil once the drain completes
		close(drained)
	}()

	if err := srv.Serve(lis); err != nil {
		fmt.Fprintln(os.Stderr, "continuumd:", err)
		os.Exit(1)
	}
	<-drained
	ep.Close()
	if m != nil {
		// Flush the final counters so a scrape gap at exit loses nothing.
		fmt.Println("continuumd: final metrics snapshot:")
		m.WritePrometheus(os.Stdout)
	}
	fmt.Println("continuumd: drained, exiting")
}

// serveMetrics exposes the shared registry in Prometheus text format plus
// a trivial liveness probe. Scrapes read a consistent snapshot; they never
// block the invoke path beyond the registry's per-metric locks.
func serveMetrics(addr string, m *metrics.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	fmt.Printf("continuumd: metrics on http://%s/metrics\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "continuumd: metrics server:", err)
	}
}
