// Command continuum-bench regenerates the reconstructed evaluation: every
// table and figure indexed in DESIGN.md, plus the design-choice ablations.
//
// Usage:
//
//	continuum-bench                 # run everything at full size
//	continuum-bench -exp F1,T3      # selected experiments
//	continuum-bench -ablations      # the A* ablation studies
//	continuum-bench -size small     # trimmed parameters (quick look)
//	continuum-bench -csv            # tables as CSV
//	continuum-bench -wire           # wire-protocol throughput -> BENCH_wire.json
//	continuum-bench -spec           # speculation/hedging tail latency -> BENCH_speculation.json
//	continuum-bench -overload       # goodput under flash crowd, admission on/off -> BENCH_overload.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"continuum/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (F1,T1,...) or 'all'")
	ablations := flag.Bool("ablations", false, "run the ablation studies instead of the main experiments")
	sizeFlag := flag.String("size", "full", "experiment size: 'full' or 'small'")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	wireBench := flag.Bool("wire", false, "measure wire-protocol throughput over loopback instead of the experiments")
	wireN := flag.Int("wire-n", 20000, "wire bench: calls per scenario")
	wirePayload := flag.Int("wire-payload", 256, "wire bench: invoke payload bytes")
	wireC := flag.Int("wire-c", 64, "wire bench: concurrent callers on the shared connection")
	wireOut := flag.String("wire-out", "BENCH_wire.json", "wire bench: JSON report path")
	specBench := flag.Bool("spec", false, "measure speculative-execution tail latency (sim + live hedging) instead of the experiments")
	specN := flag.Int("spec-n", 4000, "spec bench: live calls per mode")
	specOut := flag.String("spec-out", "BENCH_speculation.json", "spec bench: JSON report path")
	overloadBench := flag.Bool("overload", false, "measure goodput under a flash crowd with and without admission control instead of the experiments")
	overloadDur := flag.Duration("overload-dur", 2*time.Second, "overload bench: driven duration per mode")
	overloadOut := flag.String("overload-out", "BENCH_overload.json", "overload bench: JSON report path")
	overloadGate := flag.Bool("overload-gate", false, "overload bench: exit nonzero unless admission-on goodput >= admission-off (the overload-smoke CI gate)")
	engineBench := flag.Bool("engine", false, "measure discrete-event kernel and engine throughput instead of the experiments")
	engineQuick := flag.Bool("engine-quick", false, "engine bench: trimmed sizes for the CI gate")
	engineOut := flag.String("engine-out", "BENCH_engine.json", "engine bench: JSON report path")
	engineGate := flag.Bool("engine-gate", false, "engine bench: exit nonzero on throughput floor, alloc, or parallel-determinism violations")
	engineFloor := flag.Float64("engine-floor", 1_000_000, "engine bench: minimum calendar events/sec at the largest population")
	flag.Parse()

	if *wireBench {
		if err := runWireBench(*wireN, *wirePayload, *wireC, *wireOut); err != nil {
			fmt.Fprintf(os.Stderr, "continuum-bench: wire: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *specBench {
		if err := runSpecBench(*specN, *specOut); err != nil {
			fmt.Fprintf(os.Stderr, "continuum-bench: spec: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *engineBench {
		if err := runEngineBench(*engineQuick, *engineOut, *engineGate, *engineFloor); err != nil {
			fmt.Fprintf(os.Stderr, "continuum-bench: engine: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *overloadBench {
		if err := runOverloadBench(*overloadDur, *overloadOut, *overloadGate); err != nil {
			fmt.Fprintf(os.Stderr, "continuum-bench: overload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	size := experiments.Full
	switch *sizeFlag {
	case "full":
	case "small":
		size = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "continuum-bench: unknown size %q\n", *sizeFlag)
		os.Exit(2)
	}

	var runners []struct {
		ID  string
		Run experiments.Runner
	}
	if *ablations {
		runners = experiments.Ablations()
	} else {
		runners = experiments.All()
	}

	selected := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			selected[strings.TrimSpace(id)] = true
		}
		// Allow selecting ablations by id without the flag.
		for id := range selected {
			if strings.HasPrefix(id, "A") && !*ablations {
				runners = append(runners, experiments.Ablations()...)
				break
			}
		}
	}

	ran := 0
	for _, e := range runners {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		res := e.Run(size)
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", res.ID, res.Title, res.Table.CSV())
		} else {
			fmt.Println(res.String())
			fmt.Println()
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "continuum-bench: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}
