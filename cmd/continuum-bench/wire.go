package main

// The -wire mode measures end-to-end wire-protocol throughput over real
// loopback TCP: the serial JSON round trip every peer spoke before
// multiplexing, then the same calls pipelined at high concurrency over
// ONE multiplexed connection, in both codecs. The JSON report lands in
// BENCH_wire.json so the numbers ride along with the code that earned
// them.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"continuum/internal/faas"
	"continuum/internal/wire"
)

type wireResult struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	Codec       string  `json:"codec"`
	Calls       int     `json:"calls"`
	Seconds     float64 `json:"seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

type wireReport struct {
	GOOS         string       `json:"goos"`
	GOARCH       string       `json:"goarch"`
	CPUs         int          `json:"cpus"`
	PayloadBytes int          `json:"payload_bytes"`
	Results      []wireResult `json:"results"`

	// SpeedupParallelOverSerial compares the multiplexed binary path at
	// full concurrency against the old one-call-at-a-time JSON protocol.
	SpeedupParallelOverSerial float64 `json:"speedup_parallel_over_serial"`
	// SpeedupSameCodec isolates multiplexing itself: parallel binary
	// against serial binary.
	SpeedupSameCodec float64 `json:"speedup_parallel_over_serial_same_codec"`

	// Frame sizes for one 64 KiB invoke request in each codec: the
	// binary codec's base64-free framing.
	FrameBytes64KJSON   int `json:"frame_bytes_64k_json"`
	FrameBytes64KBinary int `json:"frame_bytes_64k_binary"`
}

// runWireBench measures calls/sec for each scenario and writes the JSON
// report to out.
func runWireBench(calls, payload, concurrency int, out string) error {
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "bench", Capacity: 2 * concurrency, WarmTTL: time.Minute,
	}, reg)
	srv := &wire.Server{
		Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep},
		Workers: 2 * concurrency,
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(lis)
	defer srv.Close()
	addr := lis.Addr().String()

	body := bytes.Repeat([]byte{'x'}, payload)
	rep := &wireReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		PayloadBytes: payload,
	}
	scenarios := []struct {
		name        string
		codec       string
		concurrency int
	}{
		{"serial-json", "json", 1},
		{"serial-binary", "bin", 1},
		{fmt.Sprintf("parallel%d-json", concurrency), "json", concurrency},
		{fmt.Sprintf("parallel%d-binary", concurrency), "bin", concurrency},
	}
	for _, sc := range scenarios {
		secs, err := wireScenario(addr, body, calls, sc.concurrency, sc.codec == "json")
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		rep.Results = append(rep.Results, wireResult{
			Name: sc.name, Concurrency: sc.concurrency, Codec: sc.codec,
			Calls: calls, Seconds: secs, OpsPerSec: float64(calls) / secs,
		})
		fmt.Printf("%-18s %8.0f ops/sec  (%d calls in %.2fs)\n",
			sc.name, float64(calls)/secs, calls, secs)
	}
	rep.SpeedupParallelOverSerial = rep.Results[3].OpsPerSec / rep.Results[0].OpsPerSec
	rep.SpeedupSameCodec = rep.Results[3].OpsPerSec / rep.Results[1].OpsPerSec

	big := &wire.Request{Op: wire.OpInvoke, ID: "size-probe", Fn: "echo",
		Payload: bytes.Repeat([]byte{0xAB}, 64<<10)}
	var js, bin bytes.Buffer
	if err := wire.WriteFrameCodec(&js, big, wire.CodecJSON); err != nil {
		return err
	}
	if err := wire.WriteFrameCodec(&bin, big, wire.CodecBinary); err != nil {
		return err
	}
	rep.FrameBytes64KJSON, rep.FrameBytes64KBinary = js.Len(), bin.Len()

	fmt.Printf("speedup parallel-binary over serial-json: %.1fx (same codec: %.1fx)\n",
		rep.SpeedupParallelOverSerial, rep.SpeedupSameCodec)
	fmt.Printf("64KiB invoke frame: %d B json, %d B binary\n",
		rep.FrameBytes64KJSON, rep.FrameBytes64KBinary)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// wireScenario runs `calls` echo invokes split across `concurrency`
// goroutines sharing one multiplexed client, returning wall-clock
// seconds. A short warmup primes warm containers and, unless pinned to
// JSON, the binary codec upgrade.
func wireScenario(addr string, payload []byte, calls, concurrency int, forceJSON bool) (float64, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if forceJSON {
		c.ForceJSON()
	}
	for i := 0; i < 2*concurrency; i++ {
		if _, err := c.Invoke("echo", payload); err != nil {
			return 0, err
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, concurrency)
	per := calls / concurrency
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Invoke("echo", payload); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	return secs, nil
}
