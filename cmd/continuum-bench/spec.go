package main

// The -spec mode measures speculative execution end to end and writes
// BENCH_speculation.json. Two sections:
//
//   - sim:  the F11 setup distilled — a heavy-tailed task bag over a
//     three-tier continuum with one 10x-degraded gateway under
//     queue-blind round-robin placement, run with speculation off and
//     on, reporting p50/p99 and the wasted-work fraction.
//   - live: two in-process endpoints over loopback TCP, one of which
//     stalls a fraction of its calls; a ReliableClient runs the same
//     call mix unhedged and hedged (fixed 5ms delay), reporting p50/p99
//     client latency, hedge counts, and — the correctness gate — zero
//     lost or misrouted responses.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"continuum/internal/core"
	"continuum/internal/faas"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/wire"
	"continuum/internal/workload"
)

type specSimRun struct {
	P50Seconds  float64 `json:"p50_s"`
	P99Seconds  float64 `json:"p99_s"`
	Completed   int64   `json:"completed"`
	Backups     int64   `json:"backups,omitempty"`
	Wins        int64   `json:"wins,omitempty"`
	WastedFrac  float64 `json:"wasted_frac,omitempty"`
	Lost        int64   `json:"lost"`
	Speculation bool    `json:"speculation"`
}

type specLiveRun struct {
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	Calls     int     `json:"calls"`
	Hedges    int64   `json:"hedges,omitempty"`
	HedgeWins int64   `json:"hedge_wins,omitempty"`
	Lost      int     `json:"lost"`
	Mismatch  int     `json:"mismatched"`
	Hedged    bool    `json:"hedged"`
}

type specReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`

	SimSlowdown float64      `json:"sim_slowdown"`
	Sim         []specSimRun `json:"sim"`
	// SimP99Speedup is baseline p99 over speculative p99 in the simulator.
	SimP99Speedup float64 `json:"sim_p99_speedup"`

	LiveConcurrency int           `json:"live_concurrency"`
	Live            []specLiveRun `json:"live"`
	// LiveP99Speedup is unhedged p99 over hedged p99 on the live path.
	LiveP99Speedup float64 `json:"live_p99_speedup"`
}

// specSim runs the distilled F11 scenario once per speculation setting.
func specSim(slowdown float64) []specSimRun {
	runs := make([]specSimRun, 0, 2)
	for _, spec := range []bool{false, true} {
		tt := core.BuildThreeTier(core.DefaultThreeTierParams(4, 4))
		tt.Gateways[0].CoreFlops /= slowdown
		rng := workload.NewRNG(7)
		var jobs []core.StreamJob
		for g := range tt.Sensors {
			for _, s := range tt.Sensors[g] {
				arr := workload.NewPoisson(rng.Split(), 1.2)
				sizes := rng.Split()
				t := 0.0
				for {
					t += arr.Next()
					if t > 30 {
						break
					}
					jobs = append(jobs, core.StreamJob{
						Task: &task.Task{
							Name:        "analyze",
							ScalarWork:  5e8 * sizes.Lognormal(0, 0.8),
							OutputBytes: 128,
							Inputs:      []task.DataRef{{Name: "reading", Bytes: 1024}},
						},
						Origin: s.ID,
						Submit: t,
					})
				}
			}
		}
		opts := core.ReliableOptions{MaxRetries: 2}
		if spec {
			opts.Speculate = core.SpeculateOptions{Quantile: 0.80, Multiple: 2, MinSamples: 50}
		}
		st := tt.RunStreamReliable(&placement.RoundRobin{}, jobs, tt.ComputeNodes(), opts)
		run := specSimRun{
			P50Seconds:  st.Latency.P50(),
			P99Seconds:  st.Latency.P99(),
			Completed:   st.Completed,
			Lost:        st.Lost,
			Speculation: spec,
		}
		if spec {
			run.Backups = st.SpeculativeLaunches
			run.Wins = st.SpeculativeWins
			if st.Completed+st.PreemptedTasks > 0 {
				run.WastedFrac = float64(st.PreemptedTasks) / float64(st.Completed+st.PreemptedTasks)
			}
		}
		runs = append(runs, run)
	}
	return runs
}

// specEndpoint serves "echo" with an injected stall on every stallEvery-th
// call (0 disables), the live straggler for hedging to beat.
func specEndpoint(name string, stallEvery int, stall time.Duration) (string, func(), error) {
	reg := faas.NewRegistry()
	var mu sync.Mutex
	n := 0
	reg.Register("echo", func(p []byte) ([]byte, error) {
		if stallEvery > 0 {
			mu.Lock()
			n++
			straggler := n%stallEvery == 0
			mu.Unlock()
			if straggler {
				time.Sleep(stall)
			}
		}
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: name, Capacity: 64, WarmTTL: time.Minute, PreemptAbandoned: true,
	}, reg)
	srv := &wire.Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}, Workers: 64}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(lis)
	return lis.Addr().String(), srv.Close, nil
}

// specLive runs n echo calls at the given concurrency through a
// ReliableClient, hedged or not, and reports client-observed latency
// percentiles plus the zero-loss/zero-mismatch correctness counts.
func specLive(addrs []string, n, concurrency int, hedge wire.HedgeConfig) (specLiveRun, error) {
	rc, err := wire.NewReliableClient(wire.ReliableConfig{
		Addrs:       addrs,
		Hedge:       hedge,
		CallTimeout: 5 * time.Second,
	})
	if err != nil {
		return specLiveRun{}, err
	}
	defer rc.Close()

	lats := make([]float64, n)
	status := make([]int, n) // 0 ok, 1 lost, 2 mismatched
	var wg sync.WaitGroup
	per := n / concurrency
	for w := 0; w < concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := w*per + i
				want := fmt.Sprintf("spec-%06d", id)
				start := time.Now()
				out, err := rc.Invoke("echo", []byte(want))
				lats[id] = time.Since(start).Seconds()
				if err != nil {
					status[id] = 1
				} else if string(out) != want {
					status[id] = 2
				}
			}
		}()
	}
	wg.Wait()

	run := specLiveRun{Calls: per * concurrency, Hedged: hedge.Enabled}
	for _, s := range status[:per*concurrency] {
		switch s {
		case 1:
			run.Lost++
		case 2:
			run.Mismatch++
		}
	}
	sorted := append([]float64(nil), lats[:per*concurrency]...)
	sort.Float64s(sorted)
	run.P50Millis = 1e3 * sorted[len(sorted)/2]
	run.P99Millis = 1e3 * sorted[len(sorted)*99/100]
	run.Hedges, run.HedgeWins = rc.HedgeStats()
	return run, nil
}

// runSpecBench produces BENCH_speculation.json: the simulated F11
// distillation plus the live hedged-vs-unhedged comparison.
func runSpecBench(n int, out string) error {
	rep := &specReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		SimSlowdown: 10, LiveConcurrency: 16,
	}

	rep.Sim = specSim(rep.SimSlowdown)
	rep.SimP99Speedup = rep.Sim[0].P99Seconds / rep.Sim[1].P99Seconds
	fmt.Printf("sim   (10x degraded gateway): p99 %.2fs -> %.2fs (%.1fx), %d/%d backups won, %.1f%% wasted\n",
		rep.Sim[0].P99Seconds, rep.Sim[1].P99Seconds, rep.SimP99Speedup,
		rep.Sim[1].Wins, rep.Sim[1].Backups, 100*rep.Sim[1].WastedFrac)

	// Live: one healthy endpoint, one that stalls every 20th call 30ms.
	stallAddr, closeStall, err := specEndpoint("straggler", 20, 30*time.Millisecond)
	if err != nil {
		return err
	}
	defer closeStall()
	fastAddr, closeFast, err := specEndpoint("healthy", 0, 0)
	if err != nil {
		return err
	}
	defer closeFast()
	addrs := []string{stallAddr, fastAddr}

	base, err := specLive(addrs, n, rep.LiveConcurrency, wire.HedgeConfig{})
	if err != nil {
		return err
	}
	hedged, err := specLive(addrs, n, rep.LiveConcurrency,
		wire.HedgeConfig{Enabled: true, Delay: 5 * time.Millisecond})
	if err != nil {
		return err
	}
	rep.Live = []specLiveRun{base, hedged}
	rep.LiveP99Speedup = base.P99Millis / hedged.P99Millis
	fmt.Printf("live  (every 20th call stalls 30ms): p99 %.1fms -> %.1fms (%.1fx), %d hedges, %d wins\n",
		base.P99Millis, hedged.P99Millis, rep.LiveP99Speedup, hedged.Hedges, hedged.HedgeWins)
	if lost := base.Lost + hedged.Lost; lost > 0 {
		return fmt.Errorf("spec bench lost %d responses", lost)
	}
	if mm := base.Mismatch + hedged.Mismatch; mm > 0 {
		return fmt.Errorf("spec bench misrouted %d responses", mm)
	}
	fmt.Printf("correctness: 0 lost, 0 misrouted across %d live calls\n", base.Calls+hedged.Calls)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
