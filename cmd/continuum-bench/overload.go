package main

// The -overload mode measures goodput under a sustained flash crowd,
// with and without admission control, over real loopback TCP. Both
// modes face the same offered load — many more concurrent callers than
// container slots. Without admission every request queues toward the
// QueueWait bound, so almost nothing finishes inside the SLO once the
// queue builds; with admission the adaptive bound sheds the excess
// fail-fast (clients honor the Retry-After hint) and the accepted
// requests keep finishing on time. The JSON report lands in
// BENCH_overload.json so the numbers ride along with the code.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"continuum/internal/faas"
	"continuum/internal/wire"
)

const (
	overloadCapacity = 4
	overloadWorkers  = 64 // 16x the slots: a deep flash crowd
	overloadWork     = 5 * time.Millisecond
	overloadSLO      = 50 * time.Millisecond
)

type overloadMode struct {
	Name      string  `json:"name"`
	Offered   int64   `json:"offered"`
	Completed int64   `json:"completed"`
	WithinSLO int64   `json:"within_slo"`
	Shed      int64   `json:"shed"`
	Seconds   float64 `json:"seconds"`
	// GoodputPerSec counts completions inside the SLO per second — the
	// number overload control exists to protect.
	GoodputPerSec float64 `json:"goodput_per_sec"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
}

type overloadReport struct {
	GOOS     string         `json:"goos"`
	GOARCH   string         `json:"goarch"`
	CPUs     int            `json:"cpus"`
	Capacity int            `json:"capacity"`
	Workers  int            `json:"workers"`
	WorkMS   float64        `json:"work_ms"`
	SLOMS    float64        `json:"slo_ms"`
	Modes    []overloadMode `json:"modes"`
	// GoodputRatio is admission-on goodput over admission-off; the
	// overload-smoke gate asserts it is >= 1.
	GoodputRatio float64 `json:"goodput_ratio_admission_over_none"`
}

// runOverloadBench measures both modes and writes the JSON report. With
// gate set it also fails unless admission at least matches the
// uncontrolled goodput — the claim the overload-smoke CI target pins.
func runOverloadBench(dur time.Duration, out string, gate bool) error {
	rep := &overloadReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Capacity: overloadCapacity, Workers: overloadWorkers,
		WorkMS: float64(overloadWork) / 1e6, SLOMS: float64(overloadSLO) / 1e6,
	}
	for _, admission := range []bool{false, true} {
		m, err := overloadScenario(admission, dur)
		if err != nil {
			return err
		}
		rep.Modes = append(rep.Modes, m)
		fmt.Printf("%-13s %7.0f good/sec  (%d offered, %d completed, %d in-SLO, %d shed; p50 %.1fms p99 %.1fms)\n",
			m.Name, m.GoodputPerSec, m.Offered, m.Completed, m.WithinSLO, m.Shed, m.P50MS, m.P99MS)
	}
	if none := rep.Modes[0].GoodputPerSec; none > 0 {
		rep.GoodputRatio = rep.Modes[1].GoodputPerSec / none
	} else if rep.Modes[1].GoodputPerSec > 0 {
		rep.GoodputRatio = 999 // admission rescued a fully-degraded baseline
	}
	fmt.Printf("goodput with admission / without: %.1fx\n", rep.GoodputRatio)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if gate && rep.Modes[1].GoodputPerSec < rep.Modes[0].GoodputPerSec {
		return fmt.Errorf("goodput gate failed: admission %.0f/sec < no-admission %.0f/sec",
			rep.Modes[1].GoodputPerSec, rep.Modes[0].GoodputPerSec)
	}
	return nil
}

// overloadScenario drives one endpoint configuration with the flash
// crowd for dur and accounts the outcome. Shed callers honor the
// server's Retry-After hint before trying again — the cooperative
// backpressure loop the Retry-After field exists for.
func overloadScenario(admission bool, dur time.Duration) (overloadMode, error) {
	name := "no-admission"
	cfg := faas.EndpointConfig{
		Name: "bench", Capacity: overloadCapacity, WarmTTL: time.Minute,
		QueueWait: 2 * time.Second,
	}
	if admission {
		name = "admission"
		cfg.Admission = faas.AdmissionConfig{
			Enabled:         true,
			MaxQueue:        2 * overloadCapacity,
			TargetQueueWait: 5 * time.Millisecond,
			MinSlots:        overloadCapacity,
			RetryAfterFloor: time.Millisecond,
		}
	}
	reg := faas.NewRegistry()
	reg.Register("work", func(p []byte) ([]byte, error) {
		time.Sleep(overloadWork)
		return p, nil
	})
	ep := faas.NewEndpoint(cfg, reg)
	srv := &wire.Server{Invoker: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return overloadMode{}, err
	}
	go srv.Serve(lis)
	defer func() { srv.Close(); ep.Close() }()
	addr := lis.Addr().String()

	var mu sync.Mutex
	var offered, completed, withinSLO, shed int64
	var lats []time.Duration
	var firstErr error
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < overloadWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer c.Close()
			ctx := context.Background()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				_, err := c.InvokeContext(ctx, "work", []byte("x"))
				elapsed := time.Since(t0)
				mu.Lock()
				offered++
				if err == nil {
					completed++
					lats = append(lats, elapsed)
					if elapsed <= overloadSLO {
						withinSLO++
					}
				} else {
					var re *wire.RemoteError
					if !errors.As(err, &re) || !re.Retryable {
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					shed++
				}
				mu.Unlock()
				if err != nil {
					var re *wire.RemoteError
					if errors.As(err, &re) && re.RetryAfter() > 0 {
						time.Sleep(re.RetryAfter())
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return overloadMode{}, fmt.Errorf("%s: %w", name, firstErr)
	}
	m := overloadMode{
		Name: name, Offered: offered, Completed: completed,
		WithinSLO: withinSLO, Shed: shed, Seconds: dur.Seconds(),
		GoodputPerSec: float64(withinSLO) / dur.Seconds(),
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		m.P50MS = float64(lats[len(lats)/2]) / 1e6
		m.P99MS = float64(lats[len(lats)*99/100]) / 1e6
	}
	return m, nil
}
