package main

// The -engine mode measures the discrete-event kernel's raw speed: an
// events/sec trajectory over queue population (1k → 1M pending events)
// for the calendar queue against the binary-heap reference, the
// steady-state allocation rate (the tentpole claim: zero), a
// sharded-parallel Group run proving serial/parallel event counts agree,
// and an end-to-end engine point (tasks/sec through placement, network,
// and execution on a generated stress scenario). The JSON report lands
// in BENCH_engine.json so the numbers ride along with the code; the
// -engine-gate flags make it the CI floor against kernel regressions.

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"continuum/internal/scenario"
	"continuum/internal/sim"
)

type engineKernelPoint struct {
	Pending int `json:"pending"`
	Events  int `json:"events"`
	// CalendarEvPerSec / HeapEvPerSec are schedule+fire cycles per second
	// on a self-perpetuating uniform workload holding the population at
	// Pending: calendar is the production queue, heap the kernel's own
	// pooled binary-heap fallback. BaselineEvPerSec is the pre-refactor
	// kernel (container/heap interface queue, one allocation per event) —
	// the implementation this PR replaced, reproduced here so the speedup
	// is measured against what the code actually did before.
	CalendarEvPerSec float64 `json:"calendar_ev_per_sec"`
	HeapEvPerSec     float64 `json:"heap_ev_per_sec"`
	BaselineEvPerSec float64 `json:"baseline_ev_per_sec"`
	// Speedup is calendar over baseline; SpeedupVsHeap is calendar over
	// the pooled heap fallback (isolates the calendar layout itself).
	Speedup       float64 `json:"speedup"`
	SpeedupVsHeap float64 `json:"speedup_vs_heap"`
	// AllocsPerEvent is heap objects allocated per schedule+fire cycle on
	// the calendar kernel after warmup (malloc-count delta, not bytes).
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type engineGroupResult struct {
	Shards           int     `json:"shards"`
	EventsPerShard   int     `json:"events_per_shard"`
	SerialFired      uint64  `json:"serial_fired"`
	ParallelFired    uint64  `json:"parallel_fired"`
	SerialEvPerSec   float64 `json:"serial_ev_per_sec"`
	ParallelEvPerSec float64 `json:"parallel_ev_per_sec"`
	ParallelWorkers  int     `json:"parallel_workers"`
	Identical        bool    `json:"identical"`
}

type engineReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`

	Kernel []engineKernelPoint `json:"kernel"`
	// HeadlineSpeedup is calendar over the seed-era baseline kernel at
	// the largest measured population — the number the tentpole claims.
	HeadlineSpeedup float64 `json:"headline_speedup"`
	// MaxAllocsPerEvent is the worst allocation rate across the kernel
	// points; the steady-state path is supposed to pin this at zero.
	MaxAllocsPerEvent float64 `json:"max_allocs_per_event"`

	Group engineGroupResult `json:"group"`

	// Engine end-to-end: a generated stress scenario through the full
	// pipeline (placement, staging, netsim, execution, trace).
	EngineNodes       int     `json:"engine_nodes"`
	EngineTasks       int64   `json:"engine_tasks"`
	EngineTasksPerSec float64 `json:"engine_tasks_per_sec"`
}

// measureKernel runs a self-perpetuating workload on one kernel kind:
// `pending` event chains with uniform [0,1) gaps, each fired event
// rescheduling itself, holding the population constant. It warms up with
// a tenth of the quota (pool, calendar geometry, branch predictors),
// then times `events` schedule+fire cycles and counts mallocs.
func measureKernel(kind sim.QueueKind, pending, events int) (evPerSec, allocsPerEvent float64) {
	k := sim.NewKernelQueue(kind)
	rng := rand.New(rand.NewSource(12345))
	fired, quota := 0, 0
	var hop func()
	hop = func() {
		k.After(rng.Float64(), hop)
		fired++
		if fired >= quota {
			k.Stop()
		}
	}
	for i := 0; i < pending; i++ {
		k.After(rng.Float64(), hop)
	}
	quota = events / 10
	k.Run() // warmup
	fired, quota = 0, events

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	k.Run()
	dt := time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	return float64(events) / dt, float64(m1.Mallocs-m0.Mallocs) / float64(events)
}

// baseKernel reproduces the pre-refactor event queue exactly as the seed
// shipped it: a container/heap interface queue over *baseTimer pointers
// with per-push index maintenance, one heap allocation per scheduled
// event, and no pooling. It exists only as the benchmark baseline.
type baseKernel struct {
	now     float64
	seq     uint64
	events  baseHeap
	stopped bool
}

type baseTimer struct {
	index     int
	time      float64
	seq       uint64
	fn        func()
	cancelled bool
}

type baseHeap []*baseTimer

func (h baseHeap) Len() int { return len(h) }
func (h baseHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h baseHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *baseHeap) Push(x any) {
	t := x.(*baseTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *baseHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

func (k *baseKernel) after(d float64, fn func()) *baseTimer {
	k.seq++
	t := &baseTimer{time: k.now + d, seq: k.seq, fn: fn}
	heap.Push(&k.events, t)
	return t
}

func (k *baseKernel) run() {
	k.stopped = false
	for !k.stopped && len(k.events) > 0 {
		t := heap.Pop(&k.events).(*baseTimer)
		if t.cancelled {
			continue
		}
		k.now = t.time
		t.fn()
	}
}

// measureBaseline drives the identical self-perpetuating workload as
// measureKernel through the seed-era queue.
func measureBaseline(pending, events int) float64 {
	k := &baseKernel{}
	rng := rand.New(rand.NewSource(12345))
	fired, quota := 0, 0
	var hop func()
	hop = func() {
		k.after(rng.Float64(), hop)
		fired++
		if fired >= quota {
			k.stopped = true
		}
	}
	for i := 0; i < pending; i++ {
		k.after(rng.Float64(), hop)
	}
	quota = events / 10
	k.run()
	fired, quota = 0, events
	t0 := time.Now()
	k.run()
	return float64(events) / time.Since(t0).Seconds()
}

// measureGroup builds the identical sharded workload twice — per-shard
// self-rescheduling chains plus a cross-shard post every 64th event —
// and runs it once with 1 worker and once with a full worker pool. The
// fired totals must agree exactly: that equality is the cheap CI proxy
// for the bit-identical guarantee TestGroupSerialParallelIdentical pins.
func measureGroup(shards, perShard int) engineGroupResult {
	build := func() *sim.Group {
		g := sim.NewGroup(shards, 0.05)
		for s := 0; s < shards; s++ {
			s := s
			rng := rand.New(rand.NewSource(int64(100 + s)))
			k := g.Shard(s)
			remaining := perShard
			var step func()
			step = func() {
				if remaining <= 0 {
					return
				}
				remaining--
				k.After(0.001+rng.Float64(), func() {
					step()
					if remaining%64 == 0 {
						dst := (s + 1) % shards
						g.Post(s, dst, k.Now()+g.Lookahead()+rng.Float64(), func() {})
					}
				})
			}
			step()
		}
		return g
	}
	workers := runtime.NumCPU()
	res := engineGroupResult{Shards: shards, EventsPerShard: perShard, ParallelWorkers: workers}

	gs := build()
	t0 := time.Now()
	res.SerialFired = gs.Run(1)
	res.SerialEvPerSec = float64(res.SerialFired) / time.Since(t0).Seconds()

	gp := build()
	t0 = time.Now()
	res.ParallelFired = gp.Run(workers)
	res.ParallelEvPerSec = float64(res.ParallelFired) / time.Since(t0).Seconds()

	res.Identical = res.SerialFired == res.ParallelFired
	return res
}

// runEngineBench measures the trajectory and writes the JSON report.
// With gate set it fails unless (a) calendar throughput at the largest
// population clears floor, (b) the calendar at least matches the heap
// reference there, (c) steady-state allocation is ~zero, and (d) the
// parallel Group run fired exactly the serial count.
func runEngineBench(quick bool, out string, gate bool, floor float64) error {
	populations := []int{1_000, 10_000, 100_000, 1_000_000}
	events := 2_000_000
	groupPerShard := 300_000
	engineNodes := 256
	if quick {
		populations = []int{1_000, 100_000}
		events = 300_000
		groupPerShard = 50_000
		engineNodes = 64
	}

	rep := &engineReport{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	for _, pending := range populations {
		p := engineKernelPoint{Pending: pending, Events: events}
		p.CalendarEvPerSec, p.AllocsPerEvent = measureKernel(sim.QueueCalendar, pending, events)
		p.HeapEvPerSec, _ = measureKernel(sim.QueueHeap, pending, events)
		p.BaselineEvPerSec = measureBaseline(pending, events)
		p.Speedup = p.CalendarEvPerSec / p.BaselineEvPerSec
		p.SpeedupVsHeap = p.CalendarEvPerSec / p.HeapEvPerSec
		rep.Kernel = append(rep.Kernel, p)
		if p.AllocsPerEvent > rep.MaxAllocsPerEvent {
			rep.MaxAllocsPerEvent = p.AllocsPerEvent
		}
		fmt.Printf("kernel %8d pending: calendar %11.0f ev/s  heap %11.0f ev/s  baseline %11.0f ev/s  %5.1fx vs baseline  %.4f allocs/ev\n",
			pending, p.CalendarEvPerSec, p.HeapEvPerSec, p.BaselineEvPerSec, p.Speedup, p.AllocsPerEvent)
	}
	last := rep.Kernel[len(rep.Kernel)-1]
	rep.HeadlineSpeedup = last.Speedup

	rep.Group = measureGroup(8, groupPerShard)
	fmt.Printf("group  %d shards x %d events: serial %.0f ev/s, parallel(%d workers) %.0f ev/s, identical=%v\n",
		rep.Group.Shards, rep.Group.EventsPerShard, rep.Group.SerialEvPerSec,
		rep.Group.ParallelWorkers, rep.Group.ParallelEvPerSec, rep.Group.Identical)

	s := scenario.GenerateStress(scenario.StressSpec{Nodes: engineNodes, Seed: 7, Origins: 16, Horizon: 20})
	t0 := time.Now()
	r, err := s.Run()
	if err != nil {
		return err
	}
	dt := time.Since(t0).Seconds()
	rep.EngineNodes = engineNodes
	rep.EngineTasks = r.Completed
	rep.EngineTasksPerSec = float64(r.Completed) / dt
	fmt.Printf("engine %d nodes: %d tasks end-to-end, %.0f tasks/sec\n",
		engineNodes, rep.EngineTasks, rep.EngineTasksPerSec)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if gate {
		if last.CalendarEvPerSec < floor {
			return fmt.Errorf("engine gate failed: calendar %.0f ev/s at %d pending below floor %.0f",
				last.CalendarEvPerSec, last.Pending, floor)
		}
		if last.SpeedupVsHeap < 1 {
			return fmt.Errorf("engine gate failed: calendar slower than heap reference (%.2fx) at %d pending",
				last.SpeedupVsHeap, last.Pending)
		}
		if rep.HeadlineSpeedup < 1.5 {
			return fmt.Errorf("engine gate failed: only %.2fx over the seed-era baseline at %d pending",
				rep.HeadlineSpeedup, last.Pending)
		}
		if rep.MaxAllocsPerEvent > 0.01 {
			return fmt.Errorf("engine gate failed: %.4f allocs/event on the steady-state path, want ~0",
				rep.MaxAllocsPerEvent)
		}
		if !rep.Group.Identical {
			return fmt.Errorf("engine gate failed: parallel group fired %d events, serial fired %d",
				rep.Group.ParallelFired, rep.Group.SerialFired)
		}
	}
	return nil
}
