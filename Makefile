# Canonical targets; `make check` is the tier-1 gate CI and reviewers run.

.PHONY: check build test bench chaos-smoke

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .

# End-to-end reliability smoke: chaos injection + endpoint kill under the
# race detector (also part of `make check`).
chaos-smoke:
	go test -race -count=1 -run 'TestE2EChaosNoRequestLost|TestDeadlineParitySimAndLive' .
