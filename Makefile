# Canonical targets; `make check` is the tier-1 gate CI and reviewers run.

.PHONY: check build test bench bench-wire bench-spec bench-overload bench-engine chaos-smoke spec-smoke overload-smoke engine-smoke scenario-smoke trace-smoke federation-smoke stress

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .

# Wire-protocol hot path: microbenchmarks (ns/op, B/op, allocs/op) plus
# the end-to-end loopback throughput run recorded in BENCH_wire.json.
bench-wire:
	go test -run '^$$' -bench 'BenchmarkWire' -benchmem ./internal/wire
	go run ./cmd/continuum-bench -wire -wire-out BENCH_wire.json

# Speculation/hedging tail-latency run: the simulated F11 distillation
# plus live hedged-vs-unhedged p99, recorded in BENCH_speculation.json.
bench-spec:
	go run ./cmd/continuum-bench -spec -spec-out BENCH_speculation.json

# Overload-control run: goodput under a sustained flash crowd with and
# without admission control, recorded in BENCH_overload.json.
bench-overload:
	go run ./cmd/continuum-bench -overload -overload-out BENCH_overload.json

# Kernel raw-speed run: the calendar-queue kernel against the pooled-heap
# reference and a reproduction of the seed-era container/heap kernel at
# full population sizes (up to 1M pending), plus the sharded-parallel
# group and an end-to-end engine throughput point, recorded in
# BENCH_engine.json.
bench-engine:
	go run ./cmd/continuum-bench -engine -engine-out BENCH_engine.json

# End-to-end reliability smoke: chaos injection + endpoint kill under the
# race detector (also part of `make check`).
chaos-smoke:
	go test -race -count=1 -run 'TestE2EChaosNoRequestLost|TestDeadlineParitySimAndLive' .

# Speculation smoke: engine speculation properties plus the hedged
# zero-loss end-to-end gate under the race detector (also in `make check`).
spec-smoke:
	go test -race -count=1 -run 'TestSpeculation' ./internal/core
	go test -race -count=1 -run 'TestE2EChaosHedgedNoRequestLost' .

# Overload smoke: the graceful-degradation gate under the race detector —
# a 10x flash crowd against an admission-controlled endpoint must lose no
# accepted request, shed fail-fast with Retry-After, and keep
# high-priority p99 bounded — plus a short goodput comparison asserting
# admission-on goodput >= admission-off (also part of `make check`).
overload-smoke:
	go test -race -count=1 -run 'TestE2EOverloadGracefulDegradation' .
	go run ./cmd/continuum-bench -overload -overload-gate -overload-dur 1s -overload-out BENCH_overload.json

# Engine smoke: trimmed kernel benchmark under the regression gate — the
# calendar must hold the events/sec floor, stay allocation-free in steady
# state, beat the heap reference, and the sharded-parallel group must be
# deterministic (also part of `make check`).
engine-smoke:
	go run ./cmd/continuum-bench -engine -engine-quick -engine-gate -engine-out BENCH_engine.json

# Scenario smoke: validate the shipped scenario library, then run one
# scenario on both backends — simulator and live in-process fleet — under
# the race detector (also part of `make check`).
scenario-smoke:
	go run ./cmd/continuum-sim scenario validate examples/scenarios/*.json
	go test -race -count=1 -run 'TestScenarioBothBackends' .

# Distributed-tracing smoke: a hedged request across a real two-daemon
# federation must assemble into one cross-daemon trace via
# `continuumctl trace` — client root, both arms, queue, and exec spans —
# and export as a Chrome trace file (also part of `make check`).
trace-smoke:
	./scripts/trace_smoke.sh

# Federation smoke: the federated control-plane gate under the race
# detector — a continuum-router fronting three daemons survives one hard
# kill and one graceful drain with zero accepted requests lost, the
# endpoints op tracks membership on the heartbeat schedule, and a
# router-fronted live scenario replays join/leave churn losslessly
# (also part of `make check`).
federation-smoke:
	go test -race -count=1 -run 'TestE2EFederationChurnNoRequestLost' .
	go test -race -count=1 -run 'TestLiveRouterChurnZeroLost' ./internal/scenario

# Scale harness: generate a 1000-node scenario, validate it, and run it
# through the simulator inside a generous CI-safe wall-clock budget.
stress:
	go run ./cmd/continuum-sim scenario stress -nodes 1000 -seed 42 -budget 60s
