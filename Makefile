# Canonical targets; `make check` is the tier-1 gate CI and reviewers run.

.PHONY: check build test bench

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .
