# Canonical targets; `make check` is the tier-1 gate CI and reviewers run.

.PHONY: check build test bench bench-wire chaos-smoke

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .

# Wire-protocol hot path: microbenchmarks (ns/op, B/op, allocs/op) plus
# the end-to-end loopback throughput run recorded in BENCH_wire.json.
bench-wire:
	go test -run '^$$' -bench 'BenchmarkWire' -benchmem ./internal/wire
	go run ./cmd/continuum-bench -wire -wire-out BENCH_wire.json

# End-to-end reliability smoke: chaos injection + endpoint kill under the
# race detector (also part of `make check`).
chaos-smoke:
	go test -race -count=1 -run 'TestE2EChaosNoRequestLost|TestDeadlineParitySimAndLive' .
