package continuum_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/retry"
	"continuum/internal/wire"
)

// liveEndpoint assembles one in-process continuumd: a faas endpoint
// behind a wire server, optionally with chaos injection — the exact
// composition cmd/continuumd builds from flags.
func liveEndpoint(t *testing.T, name string, chaos *fault.Chaos) (*wire.Server, string) {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: name, Capacity: 8, WarmTTL: time.Minute,
	}, reg)
	srv := &wire.Server{
		Invoker: ep, Batcher: ep, Registry: reg,
		Endpoints: []*faas.Endpoint{ep},
		Chaos:     chaos,
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return srv, lis.Addr().String()
}

// TestE2EChaosNoRequestLost is the end-to-end reliability claim: a
// federation of three endpoints, one injecting faults (dropped
// connections and error responses), one killed mid-run — and a
// ReliableClient still completes 100% of invocations, with the breaker
// transitions visible in the Prometheus exposition a daemon would serve.
func TestE2EChaosNoRequestLost(t *testing.T) {
	chaos := fault.NewChaos(fault.ChaosSpec{DropProb: 0.15, ErrProb: 0.25, Seed: 42})
	_, chaoticAddr := liveEndpoint(t, "chaotic", chaos)
	victim, victimAddr := liveEndpoint(t, "victim", nil)
	_, stableAddr := liveEndpoint(t, "stable", nil)

	m := metrics.NewRegistry()
	rc, err := wire.NewReliableClient(wire.ReliableConfig{
		Addrs: []string{chaoticAddr, victimAddr, stableAddr},
		Retry: retry.Policy{
			MaxAttempts: 12,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
		},
		Breaker: retry.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         50 * time.Millisecond,
		},
		CallTimeout: 2 * time.Second,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const total, workers = 200, 8
	var wg sync.WaitGroup
	var failures []string
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/workers; i++ {
				if w == 0 && i == total/workers/2 {
					victim.Close() // kill an endpoint mid-run
				}
				want := fmt.Sprintf("req-%d-%d", w, i)
				out, err := rc.Invoke("echo", []byte(want))
				if err != nil || string(out) != want {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("%s: %q, %v", want, out, err))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(failures) != 0 {
		t.Fatalf("%d/%d invocations lost under chaos:\n%s",
			len(failures), total, strings.Join(failures, "\n"))
	}

	// The dead endpoint's breaker must have tripped, and the whole
	// reliability state must be visible the way operators would see it:
	// through the metrics exposition.
	if rc.BreakerStates()[victimAddr] == retry.Closed {
		t.Fatalf("victim breaker still closed after endpoint death: %v", rc.BreakerStates())
	}
	var sb strings.Builder
	m.WritePrometheus(&sb)
	exp := sb.String()
	for _, want := range []string{"wire_breaker_state{", "wire_breaker_trips_total{", "wire_client_retries_total"} {
		if !strings.Contains(exp, want) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, exp)
		}
	}
	if m.Counter(metrics.Label("wire_breaker_trips_total", "ep", victimAddr)).Value() == 0 {
		t.Fatal("victim breaker trip not counted")
	}
	if m.Counter("wire_client_retries_total").Value() == 0 {
		t.Fatal("no retries recorded despite chaos and a killed endpoint")
	}
}
