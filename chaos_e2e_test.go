package continuum_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/fault"
	"continuum/internal/metrics"
	"continuum/internal/retry"
	"continuum/internal/wire"
)

// liveEndpoint assembles one in-process continuumd: a faas endpoint
// behind a wire server, optionally with chaos injection — the exact
// composition cmd/continuumd builds from flags.
func liveEndpoint(t *testing.T, name string, chaos *fault.Chaos) (*wire.Server, string) {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: name, Capacity: 8, WarmTTL: time.Minute,
	}, reg)
	srv := &wire.Server{
		Invoker: ep, Batcher: ep, Registry: reg,
		Endpoints: []*faas.Endpoint{ep},
		Chaos:     chaos,
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return srv, lis.Addr().String()
}

// TestE2EChaosNoRequestLost is the end-to-end reliability claim: a
// federation of three endpoints, one injecting faults (dropped
// connections and error responses), one killed mid-run — and a
// ReliableClient still completes 100% of invocations, with the breaker
// transitions visible in the Prometheus exposition a daemon would serve.
func TestE2EChaosNoRequestLost(t *testing.T) {
	chaos := fault.NewChaos(fault.ChaosSpec{DropProb: 0.15, ErrProb: 0.25, Seed: 42})
	_, chaoticAddr := liveEndpoint(t, "chaotic", chaos)
	victim, victimAddr := liveEndpoint(t, "victim", nil)
	_, stableAddr := liveEndpoint(t, "stable", nil)

	m := metrics.NewRegistry()
	rc, err := wire.NewReliableClient(wire.ReliableConfig{
		Addrs: []string{chaoticAddr, victimAddr, stableAddr},
		Retry: retry.Policy{
			MaxAttempts: 12,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
		},
		Breaker: retry.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         50 * time.Millisecond,
		},
		CallTimeout: 2 * time.Second,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const total, workers = 200, 8
	var wg sync.WaitGroup
	var failures []string
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/workers; i++ {
				if w == 0 && i == total/workers/2 {
					victim.Close() // kill an endpoint mid-run
				}
				want := fmt.Sprintf("req-%d-%d", w, i)
				out, err := rc.Invoke("echo", []byte(want))
				if err != nil || string(out) != want {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("%s: %q, %v", want, out, err))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(failures) != 0 {
		t.Fatalf("%d/%d invocations lost under chaos:\n%s",
			len(failures), total, strings.Join(failures, "\n"))
	}

	// The dead endpoint's breaker must have tripped, and the whole
	// reliability state must be visible the way operators would see it:
	// through the metrics exposition.
	if rc.BreakerStates()[victimAddr] == retry.Closed {
		t.Fatalf("victim breaker still closed after endpoint death: %v", rc.BreakerStates())
	}
	var sb strings.Builder
	m.WritePrometheus(&sb)
	exp := sb.String()
	for _, want := range []string{"wire_breaker_state{", "wire_breaker_trips_total{", "wire_client_retries_total"} {
		if !strings.Contains(exp, want) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, exp)
		}
	}
	if m.Counter(metrics.Label("wire_breaker_trips_total", "ep", victimAddr)).Value() == 0 {
		t.Fatal("victim breaker trip not counted")
	}
	if m.Counter("wire_client_retries_total").Value() == 0 {
		t.Fatal("no retries recorded despite chaos and a killed endpoint")
	}
}

// slowableEndpoint is liveEndpoint with a handler whose delay the test
// controls per call — the straggler injector for hedging tests.
func slowableEndpoint(t *testing.T, name string, delay func() time.Duration) string {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) {
		if d := delay(); d > 0 {
			time.Sleep(d)
		}
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: name, Capacity: 16, WarmTTL: time.Minute, PreemptAbandoned: true,
	}, reg)
	srv := &wire.Server{
		Invoker: ep, Batcher: ep, Registry: reg,
		Endpoints: []*faas.Endpoint{ep},
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return lis.Addr().String()
}

// TestE2EChaosHedgedNoRequestLost is the hedging end-to-end claim: with
// hedged requests racing two endpoints — one of which stalls a fraction
// of its calls — every invocation still completes exactly once with its
// own payload. A leaked pending entry, a crossed FIFO, or a duplicated
// response would surface as a mismatched echo; a hedge arm misreported
// to a breaker would surface as a trip on a healthy endpoint.
func TestE2EChaosHedgedNoRequestLost(t *testing.T) {
	var n int64
	var mu sync.Mutex
	straggle := func() time.Duration {
		mu.Lock()
		n++
		k := n
		mu.Unlock()
		if k%7 == 0 { // every 7th call on this endpoint stalls
			return 80 * time.Millisecond
		}
		return 0
	}
	slowAddr := slowableEndpoint(t, "straggler", straggle)
	fastAddr := slowableEndpoint(t, "healthy", func() time.Duration { return 0 })

	m := metrics.NewRegistry()
	rc, err := wire.NewReliableClient(wire.ReliableConfig{
		Addrs: []string{slowAddr, fastAddr},
		Retry: retry.Policy{
			MaxAttempts: 6,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
		},
		Hedge:       wire.HedgeConfig{Enabled: true, Delay: 10 * time.Millisecond},
		CallTimeout: 2 * time.Second,
		Metrics:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const total, workers = 200, 8
	var wg sync.WaitGroup
	var failures []string
	var fmu sync.Mutex
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/workers; i++ {
				want := fmt.Sprintf("hedged-%d-%d", w, i)
				out, err := rc.Invoke("echo", []byte(want))
				if err != nil || string(out) != want {
					fmu.Lock()
					failures = append(failures, fmt.Sprintf("%s: %q, %v", want, out, err))
					fmu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(failures) != 0 {
		t.Fatalf("%d/%d hedged invocations lost or misrouted:\n%s",
			len(failures), total, strings.Join(failures, "\n"))
	}

	launched, wins := rc.HedgeStats()
	if launched == 0 {
		t.Fatal("no hedge arms launched despite injected stragglers")
	}
	if wins == 0 {
		t.Fatal("no hedge wins despite 80ms stalls vs a 10ms hedge delay")
	}
	// Cancelled losing arms must not have tripped any breaker.
	for addr, st := range rc.BreakerStates() {
		if st != retry.Closed {
			t.Fatalf("breaker for %s = %v after hedged run, want closed", addr, st)
		}
	}
	if m.Counter("wire_hedges_total").Value() != launched {
		t.Fatalf("wire_hedges_total = %v, HedgeStats launched = %d",
			m.Counter("wire_hedges_total").Value(), launched)
	}
	if m.Counter("wire_hedge_wins_total").Value() != wins {
		t.Fatalf("wire_hedge_wins_total = %v, HedgeStats wins = %d",
			m.Counter("wire_hedge_wins_total").Value(), wins)
	}
}
