package continuum_test

// Federation end-to-end gate (`make federation-smoke`): a
// continuum-router fronting three daemons survives one hard kill and
// one graceful drain mid-run with zero accepted requests lost, and the
// endpoints op reflects membership changes within one heartbeat
// interval. Every piece is the real composition the binaries build:
// daemons join through federation.Agent over the wire protocol, the
// router routes with a policy through a dynamic ReliableClient, and
// the client talks to the router alone.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/federation"
	"continuum/internal/metrics"
	"continuum/internal/retry"
	"continuum/internal/wire"
)

// fedDaemon is one in-process continuumd joined to a router.
type fedDaemon struct {
	name  string
	addr  string
	ep    *faas.Endpoint
	srv   *wire.Server
	agent *federation.Agent
}

func startFedDaemon(t *testing.T, name, routerAddr string, interval time.Duration) *fedDaemon {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{Name: name, Capacity: 8, WarmTTL: time.Minute}, reg)
	srv := &wire.Server{Invoker: ep, Batcher: ep, Registry: reg, Endpoints: []*faas.Endpoint{ep}, Name: name}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	d := &fedDaemon{name: name, addr: lis.Addr().String(), ep: ep, srv: srv}
	d.agent = federation.NewAgent(federation.AgentConfig{
		RouterAddr: routerAddr, Name: name, Advertise: d.addr,
		Endpoint: ep, Interval: interval,
	})
	d.agent.Start()
	t.Cleanup(d.agent.Stop)
	return d
}

// memberStates polls the endpoints op through the wire client until the
// fleet snapshot satisfies ok or the deadline passes, returning the
// final snapshot either way.
func memberStates(t *testing.T, c *wire.Client, deadline time.Duration, ok func([]wire.MemberStatus) bool) []wire.MemberStatus {
	t.Helper()
	var members []wire.MemberStatus
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		var err error
		if members, err = c.Endpoints(); err == nil && ok(members) {
			return members
		}
		time.Sleep(2 * time.Millisecond)
	}
	return members
}

// TestE2EFederationChurnNoRequestLost is the federated control-plane
// claim: a router fronting three daemons, one killed mid-run (server
// down, heartbeats stop, no goodbye) and one gracefully drained
// (cordon + drain announce, in-flight work finishing), still completes
// every accepted invocation — and the membership table the endpoints op
// serves tracks both departures on the heartbeat schedule.
func TestE2EFederationChurnNoRequestLost(t *testing.T) {
	const interval = 50 * time.Millisecond
	m := metrics.NewRegistry()
	rt, err := federation.NewRouter(federation.RouterConfig{
		Registry: federation.Config{HeartbeatInterval: interval},
		Policy:   federation.LeastLoadedPolicy{},
		Client: wire.ReliableConfig{
			Retry:       retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
			Breaker:     retry.BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond},
			CallTimeout: 2 * time.Second,
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtSrv := &wire.Server{Invoker: rt, Ops: rt, Name: "router", Metrics: m}
	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rtSrv.Serve(rlis)
	t.Cleanup(rtSrv.Close)
	routerAddr := rlis.Addr().String()

	d1 := startFedDaemon(t, "d1", routerAddr, interval)
	d2 := startFedDaemon(t, "d2", routerAddr, interval)
	d3 := startFedDaemon(t, "d3", routerAddr, interval)
	_ = d1

	admin, err := wire.Dial(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	members := memberStates(t, admin, 5*time.Second, func(ms []wire.MemberStatus) bool {
		return len(ms) == 3
	})
	if len(members) != 3 {
		t.Fatalf("fleet never assembled: %+v", members)
	}

	// The client talks to the router alone; client-side retries cover the
	// window where the router itself reports a retryable routing failure.
	rc, err := wire.NewReliableClient(wire.ReliableConfig{
		Addrs:       []string{routerAddr},
		Retry:       retry.Policy{MaxAttempts: 12, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const total, workers = 240, 8
	var wg sync.WaitGroup
	var failures []string
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/workers; i++ {
				switch {
				case w == 0 && i == total/workers/3:
					// Hard kill: the server dies and the heartbeats stop, no
					// goodbye. The router must breaker/retry around the corpse
					// now and expire it from membership on the lease schedule.
					d2.srv.Close()
					d2.agent.Stop()
				case w == 1 && i == total/workers/2:
					// Graceful drain: the continuumd shutdown flow — cordon the
					// endpoint, announce the drain. In-flight work finishes;
					// new work must route elsewhere immediately.
					d3.ep.SetCordon(true)
					if err := d3.agent.Leave(true); err != nil {
						t.Errorf("drain announce: %v", err)
					}
				}
				want := fmt.Sprintf("fed-%d-%d", w, i)
				out, err := rc.Invoke("echo", []byte(want))
				if err != nil || string(out) != want {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("%s: %q, %v", want, out, err))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(failures) != 0 {
		t.Fatalf("%d/%d invocations lost during membership churn:\n%s",
			len(failures), total, strings.Join(failures, "\n"))
	}

	// Membership visibility: the drain must be listed within one
	// heartbeat interval of the announce (it was synchronous, so it is
	// already there), and the killed daemon must reach suspect-or-gone
	// within one interval past its suspicion horizon, then disappear
	// entirely by the expiry horizon.
	members = memberStates(t, admin, interval, func(ms []wire.MemberStatus) bool {
		for _, mb := range ms {
			if mb.Name == "d3" && (mb.State == federation.StateDraining || mb.Draining) {
				return true
			}
		}
		// d3 may also have expired already if the run outlasted its lease.
		for _, mb := range ms {
			if mb.Name == "d3" {
				return false
			}
		}
		return true
	})
	for _, mb := range members {
		if mb.Name == "d3" && mb.State == federation.StateAlive && !mb.Draining {
			t.Fatalf("drained member still listed alive one interval after the announce: %+v", members)
		}
	}
	members = memberStates(t, admin, 6*interval, func(ms []wire.MemberStatus) bool {
		for _, mb := range ms {
			if mb.Name == "d2" {
				return false
			}
		}
		return true
	})
	for _, mb := range members {
		if mb.Name == "d2" {
			t.Fatalf("killed member still in membership past the expiry horizon: %+v", members)
		}
	}

	// Surviving capacity still serves.
	if out, err := rc.Invoke("echo", []byte("after-churn")); err != nil || string(out) != "after-churn" {
		t.Fatalf("invoke after churn: %q, %v", out, err)
	}

	// The operator view: federation metrics counted the lifecycle.
	var sb strings.Builder
	m.WritePrometheus(&sb)
	exp := sb.String()
	for _, want := range []string{"federation_members", "federation_routes_total", "federation_heartbeats_total"} {
		if !strings.Contains(exp, want) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, exp)
		}
	}
	if m.Counter("federation_registers_total").Value() < 3 {
		t.Fatalf("federation_registers_total = %v, want >= 3", m.Counter("federation_registers_total").Value())
	}
	if m.Counter("federation_routes_total").Value() == 0 {
		t.Fatal("router routed nothing according to federation_routes_total")
	}
}
