package continuum_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"continuum/internal/faas"
	"continuum/internal/wire"
)

// overloadEndpoint assembles an in-process continuumd running admission
// control — the composition `continuumd -max-queue` builds from flags.
// The "work" function sleeps workDur then echoes, so capacity is the
// only throughput limit and queue waits are predictable.
func overloadEndpoint(t *testing.T, capacity, maxQueue int, workDur time.Duration) (*faas.Endpoint, string) {
	t.Helper()
	reg := faas.NewRegistry()
	reg.Register("work", func(p []byte) ([]byte, error) {
		time.Sleep(workDur)
		return p, nil
	})
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "overloaded", Capacity: capacity, WarmTTL: time.Minute,
		QueueWait: 2 * time.Second,
		Admission: faas.AdmissionConfig{
			Enabled:         true,
			MaxQueue:        maxQueue,
			TargetQueueWait: 5 * time.Millisecond,
			MinSlots:        capacity, // pin the pool: the gate measures admission, not elasticity
			RetryAfterFloor: time.Millisecond,
		},
	}, reg)
	srv := &wire.Server{
		Invoker: ep, Batcher: ep, Registry: reg,
		Endpoints: []*faas.Endpoint{ep},
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); ep.Close() })
	return ep, lis.Addr().String()
}

func p99(d []time.Duration) time.Duration {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d[len(d)*99/100]
}

// TestE2EOverloadGracefulDegradation is the overload-control claim end
// to end: a 10x flash crowd against an admission-controlled endpoint
// must degrade gracefully —
//
//   - zero accepted requests lost: every request either completes with
//     the right bytes or is rejected with the overload error; nothing
//     hangs, nothing fails any other way;
//   - shed requests fail FAST (far under the 2s QueueWait), marked
//     retryable, and carry a Retry-After hint for client backpressure;
//   - high-priority work stays usable: its p99 under the crowd is
//     within 3x the unloaded baseline.
func TestE2EOverloadGracefulDegradation(t *testing.T) {
	// Work long enough that execution dominates scheduler noise (the -race
	// detector roughly doubles goroutine overheads); the p99 bound below
	// would flake if queueing jitter were comparable to workDur.
	const (
		capacity = 4
		workDur  = 12 * time.Millisecond
		workers  = 40 // 10x the endpoint's capacity
		perWkr   = 5
	)
	ep, addr := overloadEndpoint(t, capacity, capacity, workDur)

	dial := func() *wire.Client {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Unloaded baseline: serial high-priority calls on an idle endpoint.
	base := dial()
	highCtx := faas.WithPriority(context.Background(), faas.PriorityHigh)
	var baseLats []time.Duration
	for i := 0; i < 50; i++ {
		t0 := time.Now()
		if _, err := base.InvokeContext(highCtx, "work", []byte("warm")); err != nil {
			t.Fatalf("baseline call failed: %v", err)
		}
		baseLats = append(baseLats, time.Since(t0))
	}
	baseP99 := p99(baseLats)

	// Flash crowd: 10x capacity in concurrent workers, priorities mixed
	// round-robin. Raw clients (no retry) so sheds surface as errors.
	var mu sync.Mutex
	var highLats []time.Duration
	var completed, shed int
	var failure error
	fail := func(err error) {
		if failure == nil {
			failure = err
		}
	}
	priorities := []faas.Priority{faas.PriorityLow, faas.PriorityNormal, faas.PriorityHigh}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		prio := priorities[w%len(priorities)]
		ctx := faas.WithPriority(context.Background(), prio)
		c := dial()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWkr; i++ {
				payload := fmt.Sprintf("req-%p-%d", c, i)
				t0 := time.Now()
				out, err := c.InvokeContext(ctx, "work", []byte(payload))
				elapsed := time.Since(t0)
				mu.Lock()
				switch {
				case err == nil:
					if string(out) != payload {
						fail(fmt.Errorf("accepted request corrupted: got %q want %q", out, payload))
					}
					completed++
					if prio == faas.PriorityHigh {
						highLats = append(highLats, elapsed)
					}
				default:
					var re *wire.RemoteError
					if !errors.As(err, &re) || !re.Retryable {
						fail(fmt.Errorf("non-retryable failure under overload: %v", err))
						break
					}
					if re.RetryAfter() <= 0 {
						fail(fmt.Errorf("shed response missing Retry-After hint: %v", err))
						break
					}
					if elapsed > 500*time.Millisecond {
						fail(fmt.Errorf("shed took %v; rejections must fail fast, not wait out QueueWait", elapsed))
						break
					}
					shed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failure != nil {
		t.Fatal(failure)
	}
	total := workers * perWkr
	if completed+shed != total {
		t.Fatalf("accounting: %d completed + %d shed != %d sent", completed, shed, total)
	}
	if shed == 0 {
		t.Fatal("10x crowd shed nothing; the endpoint is not actually overloaded")
	}
	if completed == 0 {
		t.Fatal("admission starved the endpoint completely")
	}
	// The endpoint's own books must agree with the client's view: every
	// accepted request completed, every rejection is accounted as shed,
	// and low priority shed at least as much as high.
	if got := ep.Shed(); got != int64(shed) {
		t.Fatalf("endpoint counted %d shed, clients saw %d", got, shed)
	}
	byPrio := ep.ShedByPriority()
	if byPrio[0] < byPrio[faas.NumPriorities-1] {
		t.Fatalf("shedding not lowest-first: %v", byPrio)
	}
	if len(highLats) == 0 {
		t.Fatal("no high-priority request survived the crowd")
	}
	if hp := p99(highLats); hp > 3*baseP99 {
		t.Fatalf("high-priority p99 %v exceeds 3x unloaded baseline %v", hp, baseP99)
	}
}
