// Package continuum_test holds the benchmark harness: one testing.B per
// reconstructed table/figure (regenerating it at Small size each
// iteration) plus the design-choice ablations and substrate
// microbenchmarks. Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-size tables come from cmd/continuum-bench.
package continuum_test

import (
	"fmt"
	"testing"

	"continuum/internal/core"
	"continuum/internal/experiments"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/sim"
	"continuum/internal/task"
	"continuum/internal/workload"
)

// Experiment benches: each iteration regenerates the table/figure.

func benchExperiment(b *testing.B, run experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := run(experiments.Small)
		if res.Table.NumRows() == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkF1GilderCrossover regenerates F1 (Gilder crossover).
func BenchmarkF1GilderCrossover(b *testing.B) { benchExperiment(b, experiments.F1Gilder) }

// BenchmarkT1PlacementPolicies regenerates T1 (where should I compute).
func BenchmarkT1PlacementPolicies(b *testing.B) { benchExperiment(b, experiments.T1Placement) }

// BenchmarkF2DAGSched regenerates F2 (workflow scheduling).
func BenchmarkF2DAGSched(b *testing.B) { benchExperiment(b, experiments.F2DAGSched) }

// BenchmarkF3FaaS regenerates F3 (federated function serving, wall clock).
func BenchmarkF3FaaS(b *testing.B) { benchExperiment(b, experiments.F3FaaS) }

// BenchmarkT2DataFabric regenerates T2 (edge caching).
func BenchmarkT2DataFabric(b *testing.B) { benchExperiment(b, experiments.T2DataFabric) }

// BenchmarkF4ApplianceSweep regenerates F4 (specialization design space).
func BenchmarkF4ApplianceSweep(b *testing.B) { benchExperiment(b, experiments.F4ApplianceSweep) }

// BenchmarkT3FacilityPlacement regenerates T3 (where should I place my computers).
func BenchmarkT3FacilityPlacement(b *testing.B) { benchExperiment(b, experiments.T3Facility) }

// BenchmarkF5SimScaling regenerates F5 (simulator scaling).
func BenchmarkF5SimScaling(b *testing.B) { benchExperiment(b, experiments.F5SimScaling) }

// BenchmarkT4Pareto regenerates T4 (multi-objective Pareto surface).
func BenchmarkT4Pareto(b *testing.B) { benchExperiment(b, experiments.T4Pareto) }

// BenchmarkF6LightWall regenerates F6 (speed-of-light wall).
func BenchmarkF6LightWall(b *testing.B) { benchExperiment(b, experiments.F6LightWall) }

// BenchmarkF7Reliability regenerates F7 (placement under edge failures).
func BenchmarkF7Reliability(b *testing.B) { benchExperiment(b, experiments.F7Reliability) }

// BenchmarkT5Adaptive regenerates T5 (measurement vs model placement).
func BenchmarkT5Adaptive(b *testing.B) { benchExperiment(b, experiments.T5Adaptive) }

// BenchmarkF8Elasticity regenerates F8 (serverless elasticity).
func BenchmarkF8Elasticity(b *testing.B) { benchExperiment(b, experiments.F8Elasticity) }

// BenchmarkF9Routing regenerates F9 (serverless routing under skew).
func BenchmarkF9Routing(b *testing.B) { benchExperiment(b, experiments.F9Routing) }

// BenchmarkF10Workflow regenerates F10 (workflows under failures).
func BenchmarkF10Workflow(b *testing.B) { benchExperiment(b, experiments.F10Workflow) }

// BenchmarkF11Speculation regenerates F11 (hedging the tail).
func BenchmarkF11Speculation(b *testing.B) { benchExperiment(b, experiments.F11Speculation) }

// Ablation benches.

// BenchmarkAblationEventQueue regenerates A1 (heap vs sorted list).
func BenchmarkAblationEventQueue(b *testing.B) { benchExperiment(b, experiments.AblationEventQueue) }

// BenchmarkAblationFairShare regenerates A2 (max-min vs equal split).
func BenchmarkAblationFairShare(b *testing.B) { benchExperiment(b, experiments.AblationFairShare) }

// BenchmarkAblationHEFTRank regenerates A3 (upward ranks vs topo order).
func BenchmarkAblationHEFTRank(b *testing.B) { benchExperiment(b, experiments.AblationHEFTRank) }

// BenchmarkAblationBatchSize regenerates A4 (batching threshold sweep).
func BenchmarkAblationBatchSize(b *testing.B) { benchExperiment(b, experiments.AblationBatchSize) }

// BenchmarkAblationBagHeuristics regenerates A5 (bag-of-tasks heuristics).
func BenchmarkAblationBagHeuristics(b *testing.B) {
	benchExperiment(b, experiments.AblationBagHeuristics)
}

// BenchmarkMinMin50 measures batch-scheduling a 50-task bag.
func BenchmarkMinMin50(b *testing.B) {
	env := benchEnv()
	rng := workload.NewRNG(9)
	sizes := workload.NewLognormalSize(rng, 22.5, 1.0)
	tasks := make([]*task.Task, 50)
	for i := range tasks {
		tasks[i] = &task.Task{Name: "t", ScalarWork: sizes.Next()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := placement.MinMin(env, 0, tasks); len(s.Assign) != 50 {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkEngineOverhead guards the cost of the unified execution
// engine (internal/core/engine.go) on the event hot path: each iteration
// drives 200 stream jobs through the full stage→execute→account→deliver
// pipeline on a two-node continuum. The reliable-nofault variant runs the
// identical workload through RunStreamReliable with zero-value options,
// so the delta between the two sub-benchmarks is exactly what the fault
// hook costs when disarmed. Compare against the seed's BENCH_*.json rows
// before accepting regressions here — this is the dispatch loop every
// experiment's inner iteration pays.
func BenchmarkEngineOverhead(b *testing.B) {
	cat := node.Catalog()
	mk := func() (*core.Continuum, []core.StreamJob) {
		gw := cat["gateway"]
		gw.Name = "gw"
		cl := cat["cloud"]
		cl.Name = "cloud"
		c := core.New()
		a := c.AddNode(gw)
		d := c.AddNode(cl)
		c.Connect(a.ID, d.ID, 0.020, 1.25e9)
		jobs := make([]core.StreamJob, 200)
		for i := range jobs {
			jobs[i] = core.StreamJob{
				Task:   &task.Task{Name: "t", ScalarWork: 1e8, OutputBytes: 128},
				Origin: a.ID,
				Submit: float64(i) * 0.01,
			}
		}
		return c, jobs
	}
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, jobs := mk()
			if st := c.RunStream(placement.GreedyLatency{}, jobs, nil); st.Completed != 200 {
				b.Fatal("jobs lost")
			}
		}
	})
	b.Run("stream-reliable-nofault", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, jobs := mk()
			st := c.RunStreamReliable(placement.GreedyLatency{}, jobs, nil, core.ReliableOptions{})
			if st.Completed != 200 {
				b.Fatal("jobs lost")
			}
		}
	})
}

// Substrate microbenchmarks.

// BenchmarkKernelEventThroughput measures raw DES event dispatch.
func BenchmarkKernelEventThroughput(b *testing.B) {
	k := sim.NewKernel()
	left := b.N
	var hop func()
	hop = func() {
		left--
		if left > 0 {
			k.After(1, hop)
		}
	}
	k.After(1, hop)
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelManyPending measures dispatch with a large pending set.
func BenchmarkKernelManyPending(b *testing.B) {
	rng := workload.NewRNG(1)
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		for j := 0; j < 10000; j++ {
			k.At(rng.Float64(), func() {})
		}
		k.Run()
	}
}

// BenchmarkKernelSteadyState measures the schedule+fire cycle at a held
// queue population: every fired event reschedules itself, so each
// iteration is exactly one insert and one extract-min at that depth.
// Run with -benchmem: the steady-state path must report 0 allocs/op.
func BenchmarkKernelSteadyState(b *testing.B) {
	for _, pending := range []int{1000, 100000, 1000000} {
		for _, kind := range []struct {
			name string
			k    sim.QueueKind
		}{{"calendar", sim.QueueCalendar}, {"heap", sim.QueueHeap}} {
			b.Run(fmt.Sprintf("%s/pending=%d", kind.name, pending), func(b *testing.B) {
				k := sim.NewKernelQueue(kind.k)
				rng := workload.NewRNG(5)
				fired, quota := 0, 0
				var hop func()
				hop = func() {
					k.After(rng.Float64(), hop)
					fired++
					if fired >= quota {
						k.Stop()
					}
				}
				for i := 0; i < pending; i++ {
					k.After(rng.Float64(), hop)
				}
				quota = pending // warm one full turnover of the population
				k.Run()
				fired, quota = 0, b.N
				b.ReportAllocs()
				b.ResetTimer()
				k.Run()
			})
		}
	}
}

// BenchmarkNetsimMessage measures analytic small-message delivery.
func BenchmarkNetsimMessage(b *testing.B) {
	k := sim.NewKernel()
	net, _, leaves := netsim.Star(k, netsim.StarSpec{Leaves: 64, LeafLatency: 0.001, LeafCapacity: 1e9})
	rng := workload.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Message(leaves[rng.Intn(64)], leaves[rng.Intn(64)], 1e3, func() {})
		if i%1024 == 0 {
			k.Run()
		}
	}
	k.Run()
}

// BenchmarkNetsimFlowReallocate measures max-min reallocation with many
// concurrent flows on a shared bottleneck.
func BenchmarkNetsimFlowReallocate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		net, _, leaves := netsim.Star(k, netsim.StarSpec{Leaves: 32, LeafLatency: 0.001, LeafCapacity: 1e6})
		done := 0
		for f := 0; f < 64; f++ {
			net.Transfer(leaves[f%32], leaves[(f+1)%32], 1e5, func(*netsim.Flow) { done++ })
		}
		k.Run()
		if done != 64 {
			b.Fatal("flows lost")
		}
	}
}

// BenchmarkHEFT50 measures scheduling a 50-task DAG.
func BenchmarkHEFT50(b *testing.B) {
	d := task.RandomLayered(workload.NewRNG(3), 5, 12, 3, task.GenSpec{
		MeanWork: 1e10, WorkSigma: 1, MeanBytes: 1e6, BytesSigma: 1,
	})
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := placement.HEFT(env, d)
		if len(s.Assign) != d.N() {
			b.Fatal("incomplete schedule")
		}
	}
}

// BenchmarkGreedyLatencySelect measures one online placement decision.
func BenchmarkGreedyLatencySelect(b *testing.B) {
	env := benchEnv()
	pol := placement.GreedyLatency{}
	req := placement.Request{
		Task:   &task.Task{Name: "t", ScalarWork: 1e9, OutputBytes: 128},
		Origin: 0,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pol.Select(env, req) == nil {
			b.Fatal("nil selection")
		}
	}
}

// BenchmarkRNG measures the deterministic PRNG.
func BenchmarkRNG(b *testing.B) {
	rng := workload.NewRNG(4)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= rng.Uint64()
	}
	_ = sink
}

// benchEnv builds the shared 3-node heterogeneous placement environment.
func benchEnv() *placement.Env {
	k := sim.NewKernel()
	net := netsim.New(k, 3)
	net.AddDuplexLink(0, 1, 0.002, 1.25e8)
	net.AddDuplexLink(1, 2, 0.020, 1.25e9)
	net.AddDuplexLink(0, 2, 0.022, 1.25e9)
	mk := func(id int, name string, class node.Class, cores int, flops float64) *node.Node {
		return node.New(k, id, node.Spec{
			Name: name, Class: class, Cores: cores, CoreFlops: flops,
			MemBytes: 1 << 32, IdleWatts: 10, ActiveWattsCore: 5,
		})
	}
	return &placement.Env{Net: net, Nodes: []*node.Node{
		mk(0, "edge", node.Gateway, 4, 1e9),
		mk(1, "campus", node.Campus, 16, 3e9),
		mk(2, "cloud", node.Cloud, 64, 8e9),
	}}
}
