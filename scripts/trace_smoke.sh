#!/usr/bin/env sh
# Distributed-tracing smoke: boot a two-daemon federation, fire one
# hedged traced request through continuumctl, then assert that
# `continuumctl trace` assembles ONE cross-daemon trace containing the
# client root, both hedge arms, queue-wait, and exec spans — and that
# the Chrome export materializes. This is the end-to-end gate for the
# wire-propagated trace context (see DESIGN.md, "Distributed tracing").
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
D1='' D2=''
cleanup() {
    [ -n "$D1" ] && kill "$D1" 2>/dev/null || true
    [ -n "$D2" ] && kill "$D2" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build =="
go build -o "$tmp/continuumd" ./cmd/continuumd
go build -o "$tmp/continuumctl" ./cmd/continuumctl

A=127.0.0.1:19841
B=127.0.0.1:19842

echo "== start two-daemon federation =="
# d1 is chaos-delayed so the primary arm reliably outlives the hedge
# delay; d2 answers instantly and wins every race.
"$tmp/continuumd" -listen "$A" -name d1 -hedge \
    -chaos 'delay=300ms,delayp=1,seed=7' >"$tmp/d1.log" 2>&1 &
D1=$!
"$tmp/continuumd" -listen "$B" -name d2 -hedge >"$tmp/d2.log" 2>&1 &
D2=$!

ready=0
i=0
while [ $i -lt 100 ]; do
    if "$tmp/continuumctl" -addr "$A" ping >/dev/null 2>&1 &&
        "$tmp/continuumctl" -addr "$B" ping >/dev/null 2>&1; then
        ready=1
        break
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ $ready -ne 1 ]; then
    echo "trace-smoke: daemons never became reachable" >&2
    cat "$tmp/d1.log" "$tmp/d2.log" >&2
    exit 1
fi

echo "== hedged traced invoke =="
"$tmp/continuumctl" -addr "$A,$B" -hedge 30ms -trace-out "$tmp/spans.json" \
    invoke echo smoke-payload >"$tmp/invoke.out" 2>"$tmp/invoke.err"
grep -q '^smoke-payload$' "$tmp/invoke.out" || {
    echo "trace-smoke: invoke did not echo the payload" >&2
    cat "$tmp/invoke.out" "$tmp/invoke.err" >&2
    exit 1
}
tid=$(sed -n 's/^trace \([0-9a-f]*\):.*/\1/p' "$tmp/invoke.err" | head -1)
if [ -z "$tid" ]; then
    echo "trace-smoke: no trace ID reported by -trace-out" >&2
    cat "$tmp/invoke.err" >&2
    exit 1
fi
echo "trace id: $tid"

# The losing arm's daemon finishes (and records its spans) ~300ms after
# the winner returns; give it a moment before pulling.
sleep 1

echo "== assemble cross-daemon trace =="
"$tmp/continuumctl" -addr "$A,$B" trace "$tid" \
    -local "$tmp/spans.json" -chrome "$tmp/trace.json" >"$tmp/trace.out"
cat "$tmp/trace.out"

fail() {
    echo "trace-smoke: $1" >&2
    cat "$tmp/trace.out" >&2
    exit 1
}
grep -qF "trace $tid:" "$tmp/trace.out" || fail "assembled trace header missing"
grep -qF 'invoke echo [client]' "$tmp/trace.out" || fail "client root span missing"
grep -qF 'arm=primary' "$tmp/trace.out" || fail "primary arm span missing"
grep -qF 'arm=hedge' "$tmp/trace.out" || fail "hedge arm span missing"
grep -qF '[queue]' "$tmp/trace.out" || fail "queue-wait span missing"
grep -qF '[exec]' "$tmp/trace.out" || fail "exec span missing"
# Cross-daemon: spans from BOTH daemons must appear in the one trace.
grep -qE '^ *d1 ' "$tmp/trace.out" || fail "no spans from daemon d1"
grep -qE '^ *d2 ' "$tmp/trace.out" || fail "no spans from daemon d2"
# The Chrome export must materialize with the root span in it.
[ -s "$tmp/trace.json" ] || fail "chrome trace file empty"
grep -qF 'invoke echo' "$tmp/trace.json" || fail "chrome trace missing the root span"

echo "trace-smoke: one assembled cross-daemon trace ($tid) with client, both arms, queue, and exec spans"
