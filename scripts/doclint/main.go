// Command doclint enforces the godoc convention on the packages it is
// given: every exported top-level identifier — types, functions,
// methods on exported receivers, and var/const specs — must carry a doc
// comment, and every package must have a package comment. It is the
// vet-adjacent gate scripts/check.sh runs over the operator-facing
// packages (wire, faas, federation), so the API surface OPERATIONS.md
// documents cannot silently grow undocumented corners.
//
// Usage:
//
//	go run ./scripts/doclint ./internal/federation ./internal/wire
//
// Each argument is a package directory (not a pattern). Test files are
// skipped. Exit status 1 reports findings, one per line, in
// file:line: message form.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir>...")
		os.Exit(2)
	}
	var findings []string
	for _, dir := range os.Args[1:] {
		f, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers missing doc comments\n", len(findings))
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns findings for every
// undocumented exported identifier in its non-test files.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		pkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				pkgDoc = true
			}
			for _, decl := range file.Decls {
				lintDecl(decl, report)
			}
		}
		if !pkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return findings, nil
}

// lintDecl reports one top-level declaration's undocumented exported
// names. A doc comment on a grouped var/const/type block covers every
// spec in the group; a spec-level doc or trailing line comment also
// counts (the stdlib's own style for short var groups).
func lintDecl(decl ast.Decl, report func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		if recv := receiverType(d); recv != "" {
			if !ast.IsExported(recv) {
				return // method on an unexported type: internal detail
			}
			report(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
			return
		}
		report(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
			return
		}
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				covered := groupDoc || s.Doc != nil || s.Comment != nil
				for _, name := range s.Names {
					if name.IsExported() && !covered {
						report(s.Pos(), "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), name.Name)
					}
				}
			}
		}
	}
}

// receiverType returns the bare type name of a method receiver ("" for
// plain functions), unwrapping pointers and generic instantiations.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
