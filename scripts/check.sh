#!/usr/bin/env sh
# Tier-1 verification gate — the canonical pre-merge check (see README).
# Runs formatting, vet, build, and the full test suite under the race
# detector. Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== wire bench smoke =="
# One iteration of every wire benchmark: catches a hot path that stops
# compiling or panics without paying for a full measurement run.
go test -run '^$' -bench 'BenchmarkWire' -benchtime=1x ./internal/wire

echo "== chaos smoke (-race) =="
# End-to-end reliability gate: fault injection active, one endpoint
# killed mid-run, the reliable client must complete every invocation.
go test -race -count=1 -run 'TestE2EChaosNoRequestLost|TestDeadlineParitySimAndLive' .

echo "== speculation smoke (-race) =="
# Tail-latency gate: engine speculation must rescue stragglers without
# losing or double-completing tasks, and a hedged live client must
# complete every call exactly once with zero breaker trips.
go test -race -count=1 -run 'TestSpeculation' ./internal/core
go test -race -count=1 -run 'TestE2EChaosHedgedNoRequestLost' .

echo "== overload smoke (-race) =="
# Graceful-degradation gate: a 10x flash crowd against an
# admission-controlled endpoint loses no accepted request, sheds
# fail-fast with Retry-After, keeps high-priority p99 bounded, and
# admission-on goodput must be at least admission-off.
go test -race -count=1 -run 'TestE2EOverloadGracefulDegradation' .
go run ./cmd/continuum-bench -overload -overload-gate -overload-dur 1s -overload-out BENCH_overload.json

echo "== engine smoke =="
# Kernel raw-speed gate: a trimmed calendar-vs-baseline benchmark must
# hold the throughput floor, run the steady-state path allocation-free,
# beat the pooled-heap reference, and the sharded-parallel group must
# fire identically serial and parallel.
go run ./cmd/continuum-bench -engine -engine-quick -engine-gate -engine-out BENCH_engine.json

echo "== scenario library validate =="
# Every shipped scenario must pass the DSL validator.
go run ./cmd/continuum-sim scenario validate examples/scenarios/*.json

echo "== scenario smoke (-race) =="
# One scenario file, both backends: non-degenerate simulator report and
# a live in-process fleet replay with zero lost requests.
go test -race -count=1 -run 'TestScenarioBothBackends' .

echo "== federation smoke (-race) =="
# Federated control-plane gate: a router fronting three daemons survives
# one hard kill and one graceful drain with zero accepted requests lost,
# the endpoints op tracks membership on the heartbeat schedule, and a
# router-fronted live scenario replays join/leave churn losslessly.
go test -race -count=1 -run 'TestE2EFederationChurnNoRequestLost' .
go test -race -count=1 -run 'TestLiveRouterChurnZeroLost' ./internal/scenario

echo "== doc lint =="
# Every exported identifier in the operator-facing packages must carry a
# doc comment (wire, faas, federation — the API surface OPERATIONS.md
# and the godoc pass document).
go run ./scripts/doclint ./internal/federation ./internal/wire ./internal/faas

echo "== trace smoke =="
# Distributed-tracing gate: a hedged request across two real continuumd
# processes must assemble into one cross-daemon trace with the client
# root, both hedge arms, queue-wait, and exec spans.
./scripts/trace_smoke.sh

echo "check: all gates passed"
