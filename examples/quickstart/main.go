// Quickstart: the Parsl-style dataflow API in thirty lines.
//
// A map-reduce over futures: estimate π by quasi-Monte-Carlo in parallel
// shards, combining shard counts as they resolve. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"continuum/internal/dataflow"
	"continuum/internal/workload"
)

func main() {
	exec := dataflow.NewExecutor(8)
	defer exec.Close()

	const shards, perShard = 32, 200000

	// Fan out: each shard counts darts inside the unit circle.
	counts := dataflow.Map(exec, seeds(shards), func(seed uint64) (int, error) {
		rng := workload.NewRNG(seed)
		in := 0
		for i := 0; i < perShard; i++ {
			x, y := rng.Float64(), rng.Float64()
			if x*x+y*y < 1 {
				in++
			}
		}
		return in, nil
	})

	// Reduce: fold shard counts into the estimate.
	total, err := dataflow.Reduce(counts, 0, func(acc, c int) int { return acc + c })
	if err != nil {
		panic(err)
	}
	pi := 4 * float64(total) / float64(shards*perShard)
	fmt.Printf("π ≈ %.5f from %d samples across %d parallel shards\n",
		pi, shards*perShard, shards)
}

func seeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}
