// Science workflow: schedule a Montage-like astronomy mosaic DAG across a
// heterogeneous continuum (slow edge cluster, campus machine, fast distant
// cloud) with five schedulers, executing each schedule under the full
// network-contention model. Run with:
//
//	go run ./examples/scienceflow
package main

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/workload"
)

func buildContinuum() *core.Continuum {
	c := core.New()
	edge := c.AddNode(node.Spec{
		Name: "edge-cluster", Class: node.Fog,
		Cores: 8, CoreFlops: 1e9, MemBytes: 32 << 30,
		IdleWatts: 50, ActiveWattsCore: 5,
	})
	campus := c.AddNode(node.Spec{
		Name: "campus", Class: node.Campus,
		Cores: 16, CoreFlops: 3e9, MemBytes: 128 << 30,
		IdleWatts: 150, ActiveWattsCore: 10, DollarPerHour: 1.5,
	})
	cloud := c.AddNode(node.Spec{
		Name: "cloud", Class: node.Cloud,
		Cores: 64, CoreFlops: 8e9, MemBytes: 512 << 30,
		IdleWatts: 300, ActiveWattsCore: 12,
		DollarPerHour: 16, EgressPerByte: 9e-11,
	})
	c.Connect(edge.ID, campus.ID, 0.002, 1.25e8)
	c.Connect(campus.ID, cloud.ID, 0.025, 1.25e9)
	c.Connect(edge.ID, cloud.ID, 0.027, 1.25e9)
	return c
}

func main() {
	const images = 40
	dag := task.MontageLike(workload.NewRNG(2019), images, task.GenSpec{
		MeanWork: 3e10, WorkSigma: 1.0, MeanBytes: 3e7, BytesSigma: 0.8,
	})
	fmt.Printf("Montage-like mosaic: %d tasks, %d edges, %.1f Tflop total, %s intermediate data\n\n",
		dag.N(), len(dag.Edges), dag.TotalWork()/1e12, metrics.FormatBytes(dag.TotalEdgeBytes()))

	schedulers := []struct {
		name string
		make func(*placement.Env) placement.Schedule
	}{
		{"heft", func(e *placement.Env) placement.Schedule { return placement.HEFT(e, dag) }},
		{"cpop", func(e *placement.Env) placement.Schedule { return placement.CPOP(e, dag) }},
		{"greedy-eft", func(e *placement.Env) placement.Schedule { return placement.ListGreedy(e, dag) }},
		{"round-robin", func(e *placement.Env) placement.Schedule { return placement.ListRoundRobin(e, dag) }},
		{"random", func(e *placement.Env) placement.Schedule {
			return placement.ListRandom(e, dag, workload.NewRNG(5))
		}},
	}

	// mean_task_lat is per-task ready→finish (core.Stats.Latency): how
	// long a task spends staging, queued, and executing once runnable —
	// the scheduler-quality signal makespan alone hides.
	tbl := metrics.NewTable("", "scheduler", "est_makespan", "measured", "mean_task_lat", "energy", "cost")
	for _, s := range schedulers {
		c := buildContinuum()
		env := c.Env()
		sched := s.make(env)
		st, err := c.RunDAG(dag, sched, env)
		if err != nil {
			panic(err)
		}
		tbl.AddRow(
			s.name,
			metrics.FormatDuration(sched.EstMakespan),
			metrics.FormatDuration(st.Makespan),
			metrics.FormatDuration(st.Latency.Mean()),
			fmt.Sprintf("%.0f J", st.Joules),
			fmt.Sprintf("$%.4f", st.Dollars),
		)
	}
	fmt.Print(tbl.String())
}
