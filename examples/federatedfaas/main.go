// Federated FaaS: a funcX-style federation of four heterogeneous
// endpoints behind a least-loaded router, serving a mixed function
// workload from concurrent clients — with and without request batching.
// Run with:
//
//	go run ./examples/federatedfaas
package main

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"continuum/internal/faas"
	"continuum/internal/metrics"
)

func registry() *faas.Registry {
	reg := faas.NewRegistry()
	reg.Register("classify", func(p []byte) ([]byte, error) {
		// Stand-in for model inference: fixed-cost spin.
		deadline := time.Now().Add(300 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		return []byte(`{"label":"cat","score":0.93}`), nil
	})
	reg.Register("stats", func(p []byte) ([]byte, error) {
		var xs []float64
		if err := json.Unmarshal(p, &xs); err != nil {
			return nil, err
		}
		sum, sq := 0.0, 0.0
		for _, x := range xs {
			sum += x
			sq += x * x
		}
		n := float64(len(xs))
		return json.Marshal(map[string]float64{
			"mean": sum / n, "var": sq/n - (sum/n)*(sum/n),
		})
	})
	return reg
}

func federation() (*faas.Router, []*faas.Endpoint) {
	reg := registry()
	configs := []faas.EndpointConfig{
		{Name: "raspberry-pi", Capacity: 2, ColdStart: 8 * time.Millisecond, WarmTTL: time.Minute},
		{Name: "campus-node", Capacity: 8, ColdStart: 4 * time.Millisecond, WarmTTL: time.Minute},
		{Name: "cloud-a", Capacity: 16, ColdStart: 2 * time.Millisecond, WarmTTL: time.Minute},
		{Name: "cloud-b", Capacity: 16, ColdStart: 2 * time.Millisecond, WarmTTL: time.Minute},
	}
	eps := make([]*faas.Endpoint, len(configs))
	for i, cfg := range configs {
		eps[i] = faas.NewEndpoint(cfg, reg)
	}
	return faas.NewRouter(faas.RouteLeastLoaded, eps...), eps
}

func drive(inv faas.Invoker, clients, callsPer int) (float64, time.Duration) {
	var wg sync.WaitGroup
	var latSum int64
	var mu sync.Mutex
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < callsPer; i++ {
				t0 := time.Now()
				if _, err := inv.Invoke("classify", []byte(`{"pixels":"..."}`)); err != nil {
					panic(err)
				}
				local += int64(time.Since(t0))
			}
			mu.Lock()
			latSum += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	total := clients * callsPer
	return float64(total) / time.Since(start).Seconds(),
		time.Duration(latSum / int64(total))
}

func main() {
	tbl := metrics.NewTable(
		"Federated function serving: 4 endpoints, least-loaded routing",
		"mode", "calls/s", "mean_lat", "cold", "warm", "per_endpoint",
	)

	for _, batched := range []bool{false, true} {
		router, eps := federation()
		var inv faas.Invoker = router
		var b *faas.Batcher
		if batched {
			b = faas.NewBatcher(router, 8, time.Millisecond)
			inv = b
		}
		tput, lat := drive(inv, 32, 64)
		if b != nil {
			b.Close()
		}

		perEP := ""
		var cold, warm int64
		for _, ep := range eps {
			perEP += fmt.Sprintf("%s:%d ", ep.Name(), ep.Invocations())
			cold += ep.ColdStarts()
			warm += ep.WarmHits()
		}
		mode := "direct"
		if batched {
			mode = "batched(8)"
		}
		tbl.AddRow(mode, fmt.Sprintf("%.0f", tput), lat.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", cold), fmt.Sprintf("%d", warm), perEP)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nLeast-loaded routing shifts work toward the big cloud endpoints; batching amortizes container acquisitions for the hot function.")
}
