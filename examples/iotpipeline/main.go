// IoT pipeline: "where should I compute?" for a streaming analytics
// chain. Sensors on two gateways emit readings through
// parse→filter→featurize→infer; we place the pipeline three ways (all at
// the edge, all in the cloud, filter-at-edge hybrid) and compare latency,
// energy, and WAN traffic. Run with:
//
//	go run ./examples/iotpipeline
package main

import (
	"fmt"

	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/stream"
	"continuum/internal/workload"
)

func main() {
	pipeline := stream.IoTAnalytics()

	tbl := metrics.NewTable(
		"IoT analytics: operator placement over the continuum",
		"placement", "mean_lat", "p99_lat", "joules", "wan_bytes", "delivered",
	)

	for _, plan := range []string{"edge-only", "cloud-only", "hybrid"} {
		tt := core.BuildThreeTier(core.DefaultThreeTierParams(2, 4))

		var place stream.Placement
		switch plan {
		case "edge-only":
			place = stream.Placement{tt.Gateways[0], tt.Gateways[0], tt.Fog, tt.Fog}
		case "cloud-only":
			place = stream.Placement{tt.Cloud, tt.Cloud, tt.Cloud, tt.Cloud}
		case "hybrid": // filter at the edge, heavy inference in the cloud
			place = stream.Placement{tt.Gateways[0], tt.Gateways[0], tt.Cloud, tt.Cloud}
		}

		var sources []stream.Source
		for g := range tt.Sensors {
			for _, s := range tt.Sensors[g] {
				sources = append(sources, stream.Source{
					Origin:     s.ID,
					Arrivals:   workload.NewPoisson(workload.NewRNG(uint64(s.ID)), 10),
					Events:     100,
					EventBytes: 2048,
				})
			}
		}

		st, err := stream.Run(tt.Continuum, pipeline, sources, place, workload.NewRNG(7))
		if err != nil {
			panic(err)
		}
		// WAN traffic: bytes crossing into the cloud-resident stages.
		wan := 0.0
		for i, n := range place {
			if n == tt.Cloud {
				wan += st.BoundaryBytes[i]
				break
			}
		}
		tbl.AddRow(
			plan,
			metrics.FormatDuration(st.Latency.Mean()),
			metrics.FormatDuration(st.Latency.P99()),
			fmt.Sprintf("%.0f", st.Joules),
			metrics.FormatBytes(wan),
			fmt.Sprintf("%d/%d", st.EventsOut, st.EventsIn),
		)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nThe hybrid keeps the highly selective filter next to the sensors and ships only survivors to fast cloud silicon.")
}
