// Elastic: serverless-style autoscaling under bursty load, with the
// tracer's ASCII Gantt chart showing the fleet breathing — nodes light up
// during bursts and drain in the quiet. Run with:
//
//	go run ./examples/elastic
package main

import (
	"fmt"

	"continuum/internal/autoscale"
	"continuum/internal/core"
	"continuum/internal/metrics"
	"continuum/internal/node"
	"continuum/internal/trace"
	"continuum/internal/workload"
)

func main() {
	c := core.New()
	c.Tracer = trace.New(0)
	hub := c.AddVertex()

	pool := autoscale.NewPool(c, hub, autoscale.Config{
		Min: 1, Max: 6,
		Template: node.Spec{
			Name: "worker", Class: node.Cloud,
			Cores: 2, CoreFlops: 2e9, MemBytes: 8 << 30,
			IdleWatts: 15, ActiveWattsCore: 10,
		},
		LinkLatency: 0.002, LinkCapacity: 1.25e9,
		ProvisionDelay: 1.5,
		DrainAfter:     6,
		QueuePerNode:   2,
	})

	rng := workload.NewRNG(7)
	lat := metrics.NewHistogram()

	// Three bursts of 24 one-second tasks, 30 seconds apart.
	t0 := 0.0
	for burst := 0; burst < 3; burst++ {
		arr := workload.NewPoisson(rng.Split(), 12)
		at := t0
		for i := 0; i < 24; i++ {
			at += arr.Next()
			submit := at
			c.K.At(submit, func() {
				pool.Submit(2e9, 0, node.NoAccel, func() {
					lat.Add(c.K.Now() - submit)
				})
			})
		}
		t0 += 30
	}
	c.K.Run()

	fmt.Printf("72 tasks in 3 bursts: mean latency %s, p99 %s\n",
		metrics.FormatDuration(lat.Mean()), metrics.FormatDuration(lat.P99()))
	fmt.Printf("fleet: %d scale-ups (%d cold), %d scale-downs, %.0f node-seconds billed\n\n",
		pool.ScaleUps, pool.ColdProvisions, pool.ScaleDowns, pool.NodeSeconds())

	fmt.Println("per-worker busy timeline (the fleet breathing):")
	fmt.Print(c.Tracer.Gantt(72))
	ups := len(c.Tracer.Filter(trace.ScaleUp))
	downs := len(c.Tracer.Filter(trace.ScaleDown))
	fmt.Printf("\ntraced transitions: %d scale-ups, %d scale-downs\n", ups, downs)
}
