// Gilder's observation, quantified: "when the network is as fast as the
// computer's internal links, the machine disintegrates across the net."
//
// A dataset is born at a slow edge device with a fast machine across a
// link. For each (data size, bandwidth) pair we simulate both strategies —
// compute where the data is, or ship the data to the fast machine — and
// print who wins. Watch the "ship" region flood the table as bandwidth
// grows 1000x, exactly the two decades the keynote describes. Run with:
//
//	go run ./examples/gilder
package main

import (
	"fmt"

	"continuum/internal/metrics"
	"continuum/internal/netsim"
	"continuum/internal/node"
	"continuum/internal/sim"
)

const (
	edgeFlops = 1e9   // the device where data is born
	hubFlops  = 64e9  // the fast machine across the network
	linkLat   = 0.010 // 10 ms one way
	flops     = 1e10  // fixed analysis: 10 Gflop
)

// winner simulates both strategies in the DES and reports which finished
// first ("local" or "ship") with the two times.
func winner(bytes, bw float64) (string, float64, float64) {
	run := func(ship bool) float64 {
		k := sim.NewKernel()
		net := netsim.New(k, 2)
		net.AddDuplexLink(0, 1, linkLat, bw)
		edge := node.New(k, 0, node.Spec{
			Name: "edge", Class: node.Gateway, Cores: 1, CoreFlops: edgeFlops, MemBytes: 1 << 30,
		})
		hub := node.New(k, 1, node.Spec{
			Name: "hub", Class: node.Cloud, Cores: 1, CoreFlops: hubFlops, MemBytes: 1 << 40,
		})
		var done float64
		if ship {
			net.Transfer(0, 1, bytes, func(*netsim.Flow) {
				hub.Execute(flops, 0, node.NoAccel, func() { done = k.Now() })
			})
		} else {
			edge.Execute(flops, 0, node.NoAccel, func() { done = k.Now() })
		}
		k.Run()
		return done
	}
	local, ship := run(false), run(true)
	if ship < local {
		return "ship", local, ship
	}
	return "local", local, ship
}

func main() {
	sizes := []float64{1e6, 1e8, 1e9, 1e10}            // 1MB .. 10GB
	bands := []float64{1.25e6, 1.25e7, 1.25e8, 1.25e9} // 10Mbit .. 10Gbit

	tbl := metrics.NewTable(
		fmt.Sprintf("Where should a 10-Gflop analysis of D bytes run? (edge %.0fx slower than hub, %.0fms link)",
			hubFlops/edgeFlops, linkLat*1000),
		"data\\bw", "10Mbit (2001)", "100Mbit", "1Gbit", "10Gbit (x1000)",
	)
	for _, size := range sizes {
		row := []string{metrics.FormatBytes(size)}
		for _, bw := range bands {
			w, _, _ := winner(size, bw)
			row = append(row, w)
		}
		tbl.AddRow(row...)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nAt 2001 bandwidth only tiny datasets ship; at x1000 bandwidth everything up to 10GB does — the machine has disintegrated across the net.")
}
