package continuum_test

import (
	"os"
	"testing"

	"continuum/internal/scenario"
)

// TestScenarioBothBackends is the DSL's headline claim end to end: one
// scenario file drives both execution substrates. The same JSON runs on
// the discrete-event simulator (non-degenerate report) and against a
// real in-process continuumd fleet (zero lost requests despite the
// scripted cascade, fog failure, and link degradation).
func TestScenarioBothBackends(t *testing.T) {
	raw, err := os.ReadFile("examples/scenarios/cascading-failure.json")
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}

	sim, err := scenario.SimRunner{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Backend != "sim" {
		t.Fatalf("sim backend label %q", sim.Backend)
	}
	if sim.Completed == 0 || sim.MeanLat <= 0 || sim.Joules <= 0 {
		t.Fatalf("degenerate sim report: %+v", sim)
	}
	if sim.Suppressed == 0 {
		t.Fatal("scripted gateway cascade suppressed nothing in sim")
	}

	live, err := scenario.LiveRunner{Options: scenario.LiveOptions{TimeScale: 0.02}}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if live.Backend != "live" {
		t.Fatalf("live backend label %q", live.Backend)
	}
	if live.Completed == 0 {
		t.Fatal("live fleet completed nothing")
	}
	if live.Lost != 0 {
		t.Fatalf("live replay lost %d of %d requests", live.Lost, live.Lost+live.Completed)
	}
	if live.Suppressed == 0 {
		t.Fatal("scripted gateway cascade suppressed nothing live")
	}
}
