package continuum_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"continuum/internal/core"
	"continuum/internal/faas"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/task"
	"continuum/internal/trace"
)

// TestDeadlineParitySimAndLive asserts the one-semantics claim for
// per-task deadlines: the simulated engine (ReliableOptions.TaskDeadline,
// virtual time) and the live faas path (EndpointConfig.ExecTimeout, wall
// clock) both cut off an overrunning task, attribute the miss, and keep
// serving afterwards.
func TestDeadlineParitySimAndLive(t *testing.T) {
	// Simulated: a ~0.1s task against a 1ms deadline misses every
	// attempt; the trace attributes each miss to the task.
	c := core.New()
	gw := node.Catalog()["gateway"]
	gw.Name = "gw"
	c.AddNode(gw)
	c.Tracer = trace.New(0)
	jobs := []core.StreamJob{{
		Task:   &task.Task{Name: "overrun", ScalarWork: 2.5e8, OutputBytes: 10},
		Origin: c.Nodes[0].ID,
	}}
	st := c.RunStreamReliable(placement.GreedyLatency{}, jobs, nil,
		core.ReliableOptions{MaxRetries: 1, TaskDeadline: 0.001})
	if st.Completed != 0 || st.DeadlineMisses == 0 {
		t.Fatalf("sim: completed=%d misses=%d, want 0 completed with misses",
			st.Completed, st.DeadlineMisses)
	}
	attributed := false
	for _, e := range c.Tracer.Filter(trace.Failure) {
		if strings.Contains(e.Detail, "overrun deadline exceeded") {
			attributed = true
		}
	}
	if !attributed {
		t.Fatal("sim: no deadline-exceeded trace record naming the task")
	}

	// Live: the same cutoff through ExecTimeout surfaces as
	// context.DeadlineExceeded, and the endpoint stays healthy.
	reg := faas.NewRegistry()
	reg.Register("overrun", func(p []byte) ([]byte, error) {
		time.Sleep(100 * time.Millisecond)
		return p, nil
	})
	reg.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ep := faas.NewEndpoint(faas.EndpointConfig{
		Name: "live", Capacity: 2, ExecTimeout: 10 * time.Millisecond,
	}, reg)
	_, err := ep.Invoke("overrun", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("live: err = %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "overrun") {
		t.Fatalf("live: timeout error does not name the function: %v", err)
	}
	if out, err := ep.Invoke("echo", []byte("on-time")); err != nil || string(out) != "on-time" {
		t.Fatalf("live: endpoint unhealthy after deadline miss: %q, %v", out, err)
	}
}
