package continuum_test

import (
	"strings"
	"testing"

	"continuum/internal/core"
	"continuum/internal/data"
	"continuum/internal/fault"
	"continuum/internal/node"
	"continuum/internal/placement"
	"continuum/internal/scenario"
	"continuum/internal/simfaas"
	"continuum/internal/task"
	"continuum/internal/trace"
	"continuum/internal/workload"
)

// TestIntegrationScenarioDeterminism runs the same JSON scenario twice and
// requires bit-identical reports — the end-to-end reproducibility claim.
func TestIntegrationScenarioDeterminism(t *testing.T) {
	run := func() *scenario.Report {
		s := scenario.Example()
		s.Stream.Horizon = 10
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.MeanLat != b.MeanLat ||
		a.Joules != b.Joules || a.Dollars != b.Dollars {
		t.Fatalf("scenario not deterministic: %+v vs %+v", a, b)
	}
}

// TestIntegrationTracedWorkflow runs a HEFT-scheduled Montage DAG with
// tracing and checks the trace is consistent with the stats.
func TestIntegrationTracedWorkflow(t *testing.T) {
	c := core.New()
	nodeCatalogPair(c)
	tr := trace.New(0)
	c.Tracer = tr
	d := task.MontageLike(workload.NewRNG(1), 10, task.GenSpec{
		MeanWork: 1e10, WorkSigma: 0.5, MeanBytes: 1e6, BytesSigma: 0.5,
	})
	env := c.Env()
	st, err := c.RunDAG(d, placement.HEFT(env, d), env)
	if err != nil {
		t.Fatal(err)
	}
	starts := tr.Filter(trace.TaskStart)
	ends := tr.Filter(trace.TaskEnd)
	if int64(len(starts)) != st.Completed || int64(len(ends)) != st.Completed {
		t.Fatalf("trace has %d starts / %d ends for %d completions",
			len(starts), len(ends), st.Completed)
	}
	// Utilization of the busiest node must be positive and <= 1.
	for _, ent := range tr.Entities() {
		u := tr.Utilization(ent, 0, st.Makespan)
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of range for %s", u, ent)
		}
	}
	if g := tr.Gantt(40); !strings.Contains(g, "#") {
		t.Fatal("gantt shows no activity")
	}
}

// nodeCatalogPair adds a gateway and a cloud to the continuum.
func nodeCatalogPair(c *core.Continuum) []int {
	cat := node.Catalog()
	gw := cat["gateway"]
	gw.Name = "gw"
	cl := cat["cloud"]
	cl.Name = "cloud"
	a := c.AddNode(gw)
	b := c.AddNode(cl)
	c.Connect(a.ID, b.ID, 0.020, 1.25e9)
	return []int{a.ID, b.ID}
}

// TestIntegrationFabricWorkflow stages external inputs through the data
// fabric during DAG execution and verifies caching kicked in.
func TestIntegrationFabricWorkflow(t *testing.T) {
	c := core.New()
	ids := nodeCatalogPair(c)
	c.EnableFabric(workload.NewRNG(2), 1e10, data.LRU)
	shared := data.Dataset{Name: "calibration", Bytes: 2e8}
	c.Fabric.Pin(shared, ids[1]) // lives at the cloud

	// A fan of tasks all reading the same calibration dataset, pinned to
	// the gateway: the first stages it, the rest hit the cache.
	d := task.NewDAG("fan")
	for i := 0; i < 6; i++ {
		d.Add(&task.Task{
			Name: "t", ScalarWork: 1e9,
			Inputs: []task.DataRef{{Name: shared.Name, Bytes: shared.Bytes}},
		})
	}
	assign := map[task.ID]int{}
	for i := 0; i < d.N(); i++ {
		assign[task.ID(i)] = 0
	}
	st, err := c.RunDAG(d, placement.Schedule{Algorithm: "pin", Assign: assign}, c.Env())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 6 {
		t.Fatalf("completed %d", st.Completed)
	}
	// The six concurrent stages of one dataset must share work: either
	// coalesced into the in-flight transfer or served from cache.
	store := c.Fabric.Store(ids[0])
	if store.Hits == 0 && c.Fabric.Coalesced == 0 {
		t.Fatal("no sharing (hits or coalescing) across the shared-input fan")
	}
	// One physical transfer only (coalesced or cached).
	if c.Fabric.BytesMoved > shared.Bytes*1.5 {
		t.Fatalf("moved %v bytes for one %v dataset", c.Fabric.BytesMoved, shared.Bytes)
	}
}

// TestIntegrationFaultsPlusAdaptive combines failure injection with the
// learning policy: the adaptive router must keep succeeding while the
// flaky node misbehaves.
func TestIntegrationFaultsPlusAdaptive(t *testing.T) {
	c := core.New()
	ids := nodeCatalogPair(c)
	inj := fault.NewInjector(c.K, workload.NewRNG(3), 1e4)
	gwFault := inj.Attach("gw", fault.Spec{MeanUp: 1, MeanDown: 0.5})

	var jobs []core.StreamJob
	for i := 0; i < 60; i++ {
		jobs = append(jobs, core.StreamJob{
			Task:   &task.Task{Name: "t", ScalarWork: 2.5e8, OutputBytes: 64},
			Origin: ids[0],
			Submit: float64(i) * 0.2,
		})
	}
	st := c.RunStreamReliable(placement.NewAdaptive(0.05), jobs, nil, core.ReliableOptions{
		Faults:     map[int]*fault.Target{ids[0]: gwFault},
		MaxRetries: 10,
	})
	if st.SuccessRate() < 0.95 {
		t.Fatalf("success rate %v with a reliable cloud available", st.SuccessRate())
	}
	if st.Completed+st.Lost != 60 {
		t.Fatalf("accounting broken: %d + %d", st.Completed, st.Lost)
	}
}

// TestIntegrationSimFaaSScale smoke-tests 200 virtual endpoints under
// 20k invocations — the scale argument for the simulated FaaS layer.
func TestIntegrationSimFaaSScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	c := core.New()
	hub := c.AddVertex()
	rng := workload.NewRNG(4)
	const nEps = 200
	eps := make([]*simfaas.Endpoint, nEps)
	for i := range eps {
		v := c.AddVertex()
		c.Connect(v, hub, 0.002, 1.25e9)
		eps[i] = simfaas.NewEndpoint(c.K, v, "ep", 4, 0.05, 300)
	}
	client := c.AddVertex()
	c.Connect(client, hub, 0.001, 1.25e9)
	r := simfaas.NewRouter(c.Net, simfaas.TwoChoices{RNG: rng.Split()}, eps...)

	const calls = 20000
	done := 0
	arr := workload.NewPoisson(rng.Split(), 2000)
	at := 0.0
	for i := 0; i < calls; i++ {
		at += arr.Next()
		c.K.At(at, func() {
			r.Invoke(client, "f", 256, 256, 0.01, func(float64) { done++ })
		})
	}
	c.K.Run()
	if done != calls {
		t.Fatalf("completed %d of %d", done, calls)
	}
	total := int64(0)
	for _, ep := range eps {
		total += ep.Invocations
	}
	if total != calls {
		t.Fatalf("endpoint invocations %d != %d", total, calls)
	}
}
